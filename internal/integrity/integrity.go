// Package integrity is the end-to-end data-integrity layer of the
// workflow stack: content-addressed product checksums, a crash-consistent
// lineage ledger, and a scrubber that re-verifies products and repairs
// corruption by minimal re-derivation.
//
// The failure machinery of the earlier layers (retries, supervision,
// crash/resume) only sees *loud* failures — a job dies, a write errors, a
// heartbeat stops. Silent corruption is different: a flipped bit in a
// staged Level 2 file or an at-rest catalog changes no length, trips no
// error path, and poisons every downstream product. The defense is
// end-to-end verification (Sum over full content, not per-block CRCs) plus
// provenance: every product's ledger record carries the (step, inputs,
// params) that produced it, so a corrupt product can be re-derived by
// re-running only its producing step instead of the whole campaign.
//
// The ledger reuses the ckpt journal's framing (CRC-guarded JSON lines,
// torn tail truncated on open), so it survives process crashes with the
// same semantics as the main journal: any prefix is a valid recovery
// point. Because product content is a pure function of (seed, step),
// repair converges — a repaired campaign is byte-identical to a fault-free
// one.
package integrity

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/ckpt"
)

// Sum returns the content address of a product: the hex SHA-256 of its
// bytes. Unlike the per-block CRC32s in gio and the journal, this is an
// end-to-end whole-file checksum — the outermost integrity boundary.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// Product is one lineage record: a committed product's content address
// plus the provenance needed to re-derive it from scratch.
type Product struct {
	// Path is the product file, relative to the campaign directory.
	Path string `json:"path"`
	// Bytes and Sum fix the committed content (length and SHA-256).
	Bytes int64  `json:"bytes"`
	Sum   string `json:"sum"`
	// Step is the 1-based timestep that produced the product (0 for
	// products spanning steps, e.g. the merged catalog).
	Step int `json:"step,omitempty"`
	// Producer names the producing stage ("sim-step", "post-step",
	// "merge", ...) — the dispatch key for re-derivation.
	Producer string `json:"producer"`
	// Inputs lists the paths of upstream products this one was derived
	// from (the lineage graph's edges). Empty for products derived
	// directly from the seeded simulation state.
	Inputs []string `json:"inputs,omitempty"`
	// Params records the parameters the producing step ran under.
	Params string `json:"params,omitempty"`
}

// Ledger is the append-only, fsync'd lineage journal. Records are framed
// exactly like ckpt journal records (JSON payload + CRC32), so a crash
// mid-append leaves a truncatable torn tail, never a half-trusted record.
// Not safe for concurrent use; the campaign engine appends from a single
// goroutine.
type Ledger struct {
	f        *os.File
	path     string
	products []Product
	index    map[string]int // path -> latest products index
}

// OpenLedger replays the ledger at path (creating it if absent) and
// reopens it for appending, truncating any torn tail.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("integrity: open ledger: %w", err)
	}
	l := &Ledger{f: f, path: path, index: map[string]int{}}
	valid := int64(0)
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if errors.Is(err, io.EOF) {
			break // a final line without newline is a torn append: drop it
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("integrity: read ledger: %w", err)
		}
		var p Product
		if !ckpt.ParseFrame(strings.TrimSuffix(line, "\n"), &p) {
			break // torn/corrupt record: everything after is untrusted
		}
		l.record(p)
		valid += int64(len(line))
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("integrity: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("integrity: seek ledger: %w", err)
	}
	return l, nil
}

func (l *Ledger) record(p Product) {
	if i, ok := l.index[p.Path]; ok {
		l.products[i] = p // later records supersede, keeping first-commit order
		return
	}
	l.index[p.Path] = len(l.products)
	l.products = append(l.products, p)
}

// Append durably writes one lineage record: fsync'd before return, so a
// record observed written survives any later crash.
func (l *Ledger) Append(p Product) error {
	line, err := ckpt.Frame(p)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("integrity: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("integrity: sync: %w", err)
	}
	l.record(p)
	return nil
}

// Products returns the ledger's products in first-commit order (one entry
// per path; re-commits supersede in place). The returned slice is shared —
// callers must not mutate it.
func (l *Ledger) Products() []Product { return l.products }

// Lookup returns the latest lineage record for a product path.
func (l *Ledger) Lookup(path string) (Product, bool) {
	i, ok := l.index[path]
	if !ok {
		return Product{}, false
	}
	return l.products[i], true
}

// Downstream returns the paths of every product whose lineage
// (transitively) includes path — the set a corrupt product could have
// poisoned, in first-commit order. path itself is excluded.
func (l *Ledger) Downstream(path string) []string {
	tainted := map[string]bool{path: true}
	var out []string
	// Products only ever reference earlier-committed inputs, so one pass
	// in commit order reaches the full transitive closure.
	for _, p := range l.products {
		if tainted[p.Path] {
			continue
		}
		for _, in := range p.Inputs {
			if tainted[in] {
				tainted[p.Path] = true
				out = append(out, p.Path)
				break
			}
		}
	}
	return out
}

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Close releases the ledger file.
func (l *Ledger) Close() error { return l.f.Close() }
