package integrity

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSumIsContentAddressed(t *testing.T) {
	a, b := Sum([]byte("hello")), Sum([]byte("hello"))
	if a != b {
		t.Error("same content, different sums")
	}
	if len(a) != 64 {
		t.Errorf("sum length %d, want 64 hex chars", len(a))
	}
	if Sum([]byte("hello")) == Sum([]byte("hellp")) {
		t.Error("one-bit-different content collided")
	}
}

func TestLedgerAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lineage.wal")
	led, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	products := []Product{
		{Path: "l2/step001.gio", Bytes: 100, Sum: Sum([]byte("a")), Step: 1, Producer: "sim-step"},
		{Path: "centers/step001.centers", Bytes: 40, Sum: Sum([]byte("b")), Step: 1, Producer: "post-step",
			Inputs: []string{"l2/step001.gio"}},
	}
	for _, p := range products {
		if err := led.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	led.Close()

	led, err = OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if got := led.Products(); len(got) != 2 || got[0].Path != products[0].Path || got[1].Inputs[0] != "l2/step001.gio" {
		t.Fatalf("replayed %+v", got)
	}
	p, ok := led.Lookup("l2/step001.gio")
	if !ok || p.Sum != products[0].Sum {
		t.Fatalf("lookup = %+v, %v", p, ok)
	}
}

func TestLedgerSupersedesInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lineage.wal")
	led, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	led.Append(Product{Path: "a", Sum: Sum([]byte("v1")), Producer: "sim-step"})
	led.Append(Product{Path: "b", Sum: Sum([]byte("x")), Producer: "sim-step"})
	led.Append(Product{Path: "a", Sum: Sum([]byte("v2")), Producer: "sim-step"})
	got := led.Products()
	if len(got) != 2 {
		t.Fatalf("%d products, want 2 (re-commit supersedes)", len(got))
	}
	if got[0].Path != "a" || got[0].Sum != Sum([]byte("v2")) {
		t.Errorf("first product %+v, want superseded a", got[0])
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lineage.wal")
	led, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	led.Append(Product{Path: "a", Sum: Sum([]byte("a")), Producer: "sim-step"})
	led.Append(Product{Path: "b", Sum: Sum([]byte("b")), Producer: "sim-step"})
	led.Close()

	// Tear the final record mid-line: a crash mid-append.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	led, err = OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if got := led.Products(); len(got) != 1 || got[0].Path != "a" {
		t.Fatalf("after torn tail: %+v, want just a", got)
	}
	// Appending after truncation lands on a clean boundary.
	if err := led.Append(Product{Path: "c", Sum: Sum([]byte("c")), Producer: "sim-step"}); err != nil {
		t.Fatal(err)
	}
	led.Close()
	led, err = OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if got := led.Products(); len(got) != 2 || got[1].Path != "c" {
		t.Fatalf("after re-append: %+v", got)
	}
}

func TestDownstreamClosure(t *testing.T) {
	led, err := OpenLedger(filepath.Join(t.TempDir(), "lineage.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	led.Append(Product{Path: "l2/a", Producer: "sim-step"})
	led.Append(Product{Path: "l2/b", Producer: "sim-step"})
	led.Append(Product{Path: "c/a", Producer: "post-step", Inputs: []string{"l2/a"}})
	led.Append(Product{Path: "c/b", Producer: "post-step", Inputs: []string{"l2/b"}})
	led.Append(Product{Path: "merged", Producer: "merge", Inputs: []string{"c/a", "c/b"}})
	if got := led.Downstream("l2/a"); len(got) != 2 || got[0] != "c/a" || got[1] != "merged" {
		t.Errorf("downstream(l2/a) = %v", got)
	}
	if got := led.Downstream("c/b"); len(got) != 1 || got[0] != "merged" {
		t.Errorf("downstream(c/b) = %v", got)
	}
	if got := led.Downstream("merged"); got != nil {
		t.Errorf("downstream(merged) = %v, want none", got)
	}
}

func TestFlipBitIsLengthPreservingAndSingleBit(t *testing.T) {
	orig := []byte("the quick brown fox")
	for _, frac := range []float64{0, 0.3, 0.99, 1.5, -1} {
		data := append([]byte(nil), orig...)
		FlipBit(data, frac)
		if len(data) != len(orig) {
			t.Fatalf("frac %g changed length", frac)
		}
		diffBits := 0
		for i := range data {
			for b := 0; b < 8; b++ {
				if (data[i]^orig[i])>>b&1 == 1 {
					diffBits++
				}
			}
		}
		if diffBits != 1 {
			t.Errorf("frac %g flipped %d bits, want exactly 1", frac, diffBits)
		}
	}
	FlipBit(nil, 0.5) // must not panic
}

// scrubberFixture builds a dir with one verified product and its ledger.
func scrubberFixture(t *testing.T, content []byte) (*Scrubber, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "prod"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	led, err := OpenLedger(filepath.Join(dir, "lineage.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	led.Append(Product{Path: "prod", Bytes: int64(len(content)), Sum: Sum(content), Producer: "test"})
	return &Scrubber{Dir: dir, Ledger: led}, dir
}

func TestScrubberVerifiesCleanProduct(t *testing.T) {
	scr, _ := scrubberFixture(t, []byte("payload"))
	p, _ := scr.Ledger.Lookup("prod")
	if !scr.CheckRepair(p) {
		t.Fatal("clean product failed verification")
	}
	if scr.Stats.Verified != 1 || scr.Stats.Corruptions != 0 {
		t.Errorf("stats %+v", scr.Stats)
	}
}

func TestScrubberQuarantinesAndRepairs(t *testing.T) {
	content := []byte("payload payload payload")
	scr, dir := scrubberFixture(t, content)
	scr.Rederive = func(p Product) ([]byte, error) { return content, nil }
	if err := CorruptFile(filepath.Join(dir, "prod"), 0.5); err != nil {
		t.Fatal(err)
	}
	p, _ := scr.Ledger.Lookup("prod")
	if !scr.CheckRepair(p) {
		t.Fatal("repairable product not repaired")
	}
	if scr.Stats.Corruptions != 1 || scr.Stats.Quarantined != 1 || scr.Stats.Repaired != 1 {
		t.Errorf("stats %+v", scr.Stats)
	}
	got, err := os.ReadFile(filepath.Join(dir, "prod"))
	if err != nil || string(got) != string(content) {
		t.Fatalf("repaired content %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "prod.quarantine")); !errors.Is(err, os.ErrNotExist) {
		t.Error("quarantine file survived a successful repair")
	}
	events := []string{}
	for _, d := range scr.Decisions() {
		events = append(events, d.Event)
	}
	if want := "corrupt,quarantine,repair"; strings.Join(events, ",") != want {
		t.Errorf("decision events %v, want %s", events, want)
	}
}

func TestScrubberEscalatesAfterTwoFailures(t *testing.T) {
	scr, dir := scrubberFixture(t, []byte("payload"))
	attempts := 0
	scr.Rederive = func(p Product) ([]byte, error) {
		attempts++
		return []byte("wrong bytes"), nil
	}
	var escalated []string
	scr.OnGiveUp = func(p Product) { escalated = append(escalated, p.Path) }
	if err := CorruptFile(filepath.Join(dir, "prod"), 0.1); err != nil {
		t.Fatal(err)
	}
	p, _ := scr.Ledger.Lookup("prod")
	if scr.CheckRepair(p) {
		t.Fatal("unrepairable product reported healthy")
	}
	if attempts != 2 {
		t.Errorf("%d re-derivation attempts, want 2", attempts)
	}
	if scr.Stats.Escalated != 1 || len(escalated) != 1 || escalated[0] != "prod" {
		t.Errorf("escalation: stats %+v, hook %v", scr.Stats, escalated)
	}
	// The corrupt bytes stay parked for forensics.
	if _, err := os.Stat(filepath.Join(dir, "prod.quarantine")); err != nil {
		t.Error("quarantine file missing after give-up")
	}
}

func TestScrubberRepairsCorruptInputFirst(t *testing.T) {
	dir := t.TempDir()
	in, out := []byte("input bytes here"), []byte("derived output bytes")
	if err := os.WriteFile(filepath.Join(dir, "in"), in, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "out"), out, 0o644); err != nil {
		t.Fatal(err)
	}
	led, err := OpenLedger(filepath.Join(dir, "lineage.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	led.Append(Product{Path: "in", Bytes: int64(len(in)), Sum: Sum(in), Producer: "sim-step"})
	led.Append(Product{Path: "out", Bytes: int64(len(out)), Sum: Sum(out), Producer: "merge", Inputs: []string{"in"}})
	scr := &Scrubber{Dir: dir, Ledger: led, Rederive: func(p Product) ([]byte, error) {
		switch p.Path {
		case "in":
			return in, nil
		case "out":
			// The re-derivation consumes the input from disk — if the
			// corrupt input were not repaired first, this would bake the
			// corruption into the "repaired" product.
			data, err := os.ReadFile(filepath.Join(dir, "in"))
			if err != nil {
				return nil, err
			}
			if Sum(data) != Sum(in) {
				return nil, fmt.Errorf("input still corrupt")
			}
			return out, nil
		}
		return nil, fmt.Errorf("unknown %s", p.Path)
	}}
	// Corrupt both the product and its input.
	for _, name := range []string{"in", "out"} {
		if err := CorruptFile(filepath.Join(dir, name), 0.4); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := led.Lookup("out")
	if !scr.CheckRepair(p) {
		t.Fatal("repair with corrupt input failed")
	}
	if scr.Stats.Repaired != 2 || scr.Stats.Escalated != 0 {
		t.Errorf("stats %+v, want input and output both repaired", scr.Stats)
	}
}

func TestSweepNextRoundRobins(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(filepath.Join(dir, "lineage.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		content := []byte(name + " content")
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
		led.Append(Product{Path: name, Bytes: int64(len(content)), Sum: Sum(content), Producer: "test"})
	}
	scr := &Scrubber{Dir: dir, Ledger: led}
	scr.SweepNext(2) // p0 p1
	scr.SweepNext(2) // p2 p3
	scr.SweepNext(2) // p4 p0 (wraps)
	if scr.Stats.Verified != 6 {
		t.Errorf("verified %d, want 6 across three wrapped batches", scr.Stats.Verified)
	}
}

func TestDecisionStringIsStable(t *testing.T) {
	d := Decision{T: 1234.5, Path: "l2/step001.gio", Event: "quarantine", Note: "parked"}
	want := "t=1234.5    l2/step001.gio           quarantine   parked"
	if got := d.String(); got != want {
		t.Errorf("decision string %q, want %q", got, want)
	}
}
