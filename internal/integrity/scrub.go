package integrity

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// Stats accounts one campaign's integrity activity. All fields are zero
// when no corruption was injected and no scrubbing ran, keeping reports
// comparable to integrity-free runs.
type Stats struct {
	// ScrubJobs counts co-scheduled scrub jobs run; Verified the product
	// verifications that passed (a product is typically verified many
	// times over a campaign).
	ScrubJobs, Verified int
	// Corruptions counts checksum mismatches detected; Quarantined the
	// corrupt files parked under a .quarantine name.
	Corruptions, Quarantined int
	// Repaired counts products successfully re-derived and re-verified;
	// Escalated those whose re-derivation failed twice and were handed to
	// the give-up path.
	Repaired, Escalated int
}

// Decision is one entry of the scrub/repair decision log. Like the
// supervision log, it is deterministic for a fixed seed: the property
// tests require byte-identical logs across reruns.
type Decision struct {
	// T is the virtual time of the decision (0 for decisions taken during
	// directory reconciliation, before the clock starts).
	T float64
	// Path is the product concerned.
	Path string
	// Event is the decision kind: "corrupt", "quarantine", "repair",
	// "repair-fail", "give-up".
	Event string
	// Note carries the human-readable detail.
	Note string
}

// String renders the decision in the fixed-width log format.
func (d Decision) String() string {
	return fmt.Sprintf("t=%-9.1f %-24s %-12s %s", d.T, d.Path, d.Event, d.Note)
}

// Scrubber re-verifies committed products against the lineage ledger and
// repairs mismatches by minimal re-derivation. It is driven from the
// campaign engine as co-scheduled small jobs (SweepNext) plus a final
// full pass (SweepAll), and from directory reconciliation on resume
// (CheckRepair).
type Scrubber struct {
	// Dir is the campaign directory product paths are relative to.
	Dir string
	// Ledger supplies the products to verify and the lineage to repair
	// from.
	Ledger *Ledger
	// Rederive regenerates a product's bytes by re-running only its
	// producing step (dispatching on Product.Producer/Step). Required for
	// repair.
	Rederive func(p Product) ([]byte, error)
	// Now supplies the virtual clock for decision timestamps (nil: 0).
	Now func() float64
	// OnGiveUp fires when a product's re-derivation has failed twice —
	// the escalation hook the campaign wires to its degradation policy.
	OnGiveUp func(p Product)

	// Stats accumulates across sweeps.
	Stats Stats

	// Obs mirrors scrub verdicts (verified passes and every decision-log
	// event) into scrub.* counters; nil disables instrumentation.
	Obs *obs.Observer

	decisions []Decision
	cursor    int
}

// repairAttempts is how many re-derivations a product gets before the
// scrubber gives up and escalates.
const repairAttempts = 2

// Decisions returns the decision log in the order taken.
func (s *Scrubber) Decisions() []Decision { return s.decisions }

func (s *Scrubber) now() float64 {
	if s.Now == nil {
		return 0
	}
	return s.Now()
}

func (s *Scrubber) decide(path, event, note string) {
	s.decisions = append(s.decisions, Decision{T: s.now(), Path: path, Event: event, Note: note})
	// Every scrub verdict flows through here; the metric mirror rides
	// the same choke point as the decision log.
	if s.Obs != nil {
		s.Obs.Metrics().Counter("scrub." + event).Inc()
	}
}

// Verify checks a product's on-disk bytes against its ledger record
// (length and SHA-256), returning a descriptive error on mismatch.
func (s *Scrubber) Verify(p Product) error {
	data, err := os.ReadFile(filepath.Join(s.Dir, p.Path))
	if err != nil {
		return fmt.Errorf("integrity: %s unreadable: %w", p.Path, err)
	}
	if int64(len(data)) != p.Bytes {
		return fmt.Errorf("integrity: %s is %d bytes, ledger says %d", p.Path, len(data), p.Bytes)
	}
	if got := Sum(data); got != p.Sum {
		return fmt.Errorf("integrity: %s content sum %s.. does not match ledger %s..", p.Path, got[:8], p.Sum[:8])
	}
	return nil
}

// CheckRepair verifies one product and, on mismatch, quarantines and
// repairs it, reporting whether the product is healthy afterwards. This
// is the unit of work shared by the co-scheduled scrub jobs, the final
// sweep, and resume-time reconciliation.
func (s *Scrubber) CheckRepair(p Product) bool {
	err := s.Verify(p)
	if err == nil {
		s.Stats.Verified++
		if s.Obs != nil {
			s.Obs.Metrics().Counter("scrub.verified").Inc()
		}
		return true
	}
	s.Stats.Corruptions++
	s.decide(p.Path, "corrupt", err.Error())
	s.quarantine(p)
	return s.repair(p, true)
}

// quarantine parks the corrupt bytes under a .quarantine name for
// forensics (a successful repair removes them; RemoveStaleTemps sweeps
// leftovers on resume).
func (s *Scrubber) quarantine(p Product) {
	full := filepath.Join(s.Dir, p.Path)
	q := full + ".quarantine"
	//lint:allow atomicwrite parking corrupt bytes, not committing a product; durability of garbage is not worth an fsync
	if err := os.Rename(full, q); err == nil {
		s.Stats.Quarantined++
		s.decide(p.Path, "quarantine", filepath.Base(q))
	}
}

// repair re-derives the product from its lineage: inputs are verified
// (and recursively repaired) first, then the producing step is re-run and
// the result re-verified, at most repairAttempts times before escalating.
func (s *Scrubber) repair(p Product, fixInputs bool) bool {
	if s.Rederive == nil {
		s.giveUp(p, "no re-derivation available")
		return false
	}
	if fixInputs {
		// Minimal re-derivation walks the lineage graph upward: a corrupt
		// input would be baked into the regenerated product.
		for _, in := range p.Inputs {
			ip, ok := s.Ledger.Lookup(in)
			if !ok {
				continue
			}
			if s.Verify(ip) != nil {
				s.Stats.Corruptions++
				s.decide(ip.Path, "corrupt", "found while repairing "+p.Path)
				s.quarantine(ip)
				s.repair(ip, true)
			}
		}
	}
	for attempt := 1; attempt <= repairAttempts; attempt++ {
		data, err := s.Rederive(p)
		if err == nil && Sum(data) == p.Sum && int64(len(data)) == p.Bytes {
			if err := ckpt.WriteFileAtomic(filepath.Join(s.Dir, p.Path), data); err == nil {
				os.Remove(filepath.Join(s.Dir, p.Path) + ".quarantine")
				s.Stats.Repaired++
				s.decide(p.Path, "repair", fmt.Sprintf("re-derived via %s (attempt %d)", p.Producer, attempt))
				return true
			}
			err = fmt.Errorf("rewrite failed")
		}
		note := "re-derived bytes do not match lineage sum"
		if err != nil {
			note = err.Error()
		}
		s.decide(p.Path, "repair-fail", fmt.Sprintf("attempt %d: %s", attempt, note))
	}
	s.giveUp(p, fmt.Sprintf("re-derivation failed %d times", repairAttempts))
	return false
}

func (s *Scrubber) giveUp(p Product, note string) {
	s.Stats.Escalated++
	s.decide(p.Path, "give-up", note)
	if s.OnGiveUp != nil {
		s.OnGiveUp(p)
	}
}

// SweepNext verifies the next batch products in ledger order, wrapping
// around — the body of one co-scheduled scrub job. The round-robin cursor
// makes the schedule deterministic: job k always scrubs the same window
// of the ledger for a fixed fault seed.
func (s *Scrubber) SweepNext(batch int) {
	products := s.Ledger.Products()
	if len(products) == 0 || batch <= 0 {
		return
	}
	if batch > len(products) {
		batch = len(products)
	}
	for i := 0; i < batch; i++ {
		s.cursor %= len(products)
		s.CheckRepair(products[s.cursor])
		s.cursor++
	}
}

// SweepAll verifies every ledger product once, in commit order — the
// final full pass that guarantees a campaign ends with a clean product
// set no matter how late the last corruption landed.
func (s *Scrubber) SweepAll() {
	for _, p := range s.Ledger.Products() {
		s.CheckRepair(p)
	}
}

// FlipBit deterministically corrupts one bit of data in place: the bit at
// bitFrac of the way through the payload (clamped to [0, 1)). It is the
// canonical injected fault: length-preserving, so only content checksums
// notice.
func FlipBit(data []byte, bitFrac float64) {
	if len(data) == 0 {
		return
	}
	if bitFrac < 0 {
		bitFrac = 0
	}
	if bitFrac >= 1 {
		bitFrac = 0.999999
	}
	bit := int(bitFrac * float64(len(data)*8))
	data[bit/8] ^= 1 << (bit % 8)
}

// CorruptFile flips one bit of the file at path in place, preserving its
// length — the at-rest bit-rot injection. The write is deliberately
// non-atomic: corruption does not announce itself with a rename.
func CorruptFile(path string, bitFrac float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	FlipBit(data, bitFrac)
	//lint:allow atomicwrite deliberate in-place corruption: bit-rot injection must not look like a commit
	return os.WriteFile(path, data, 0o644)
}
