// Package subhalo identifies gravitationally self-bound substructure
// within FOF halos.
//
// It implements the paper's description (§3.3.1) of the hierarchical
// structure finder of Maciejewski et al. / Springel et al. (SUBFIND
// family): "The local density for each particle in the parent FOF halo is
// estimated by finding a specified number of nearest neighbor particles
// ... A subhalo candidate tree is then constructed by iterating over the
// particle list in sorted order according to density. Finally, candidate
// particles with high total energy are 'unbound' from subhalos in a
// multi-pass algorithm, removing no more than one-quarter of the particles
// with positive energy at each step."
//
// Like the paper's implementation, the finder is tree-based and serial per
// halo — which is exactly why its per-halo cost is so unbalanced across
// nodes (§4.2's 8172 s vs 1457 s spread) and why it is a candidate for
// off-loading in the combined workflow.
package subhalo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bhtree"
)

// Options configures substructure finding.
type Options struct {
	// Mass is the per-particle mass (> 0).
	Mass float64
	// K is the nearest-neighbour count for density estimation (>= 2).
	K int
	// MinSize discards candidates that end smaller after unbinding.
	MinSize int
	// MaxUnbindFraction caps the share of positive-energy particles removed
	// per unbinding pass; the paper uses one quarter. <= 0 selects 0.25.
	MaxUnbindFraction float64
	// G scales the potential energy against kinetic energy; 1 for natural
	// units (tests), or the physical constant for the chosen unit system.
	G float64
	// Theta is the Barnes-Hut opening angle for unbinding potentials;
	// <= 0 selects 0.6.
	Theta float64
	// Softening is the potential's constant distance offset.
	Softening float64
	// UseKernel selects the cubic-spline SPH density estimator rather than
	// the top-hat mass-over-volume form.
	UseKernel bool
}

func (o *Options) setDefaults() error {
	if o.Mass <= 0 {
		return fmt.Errorf("subhalo: mass %g must be positive", o.Mass)
	}
	if o.K < 2 {
		return fmt.Errorf("subhalo: K=%d must be >= 2", o.K)
	}
	if o.MinSize < 1 {
		return fmt.Errorf("subhalo: MinSize=%d must be >= 1", o.MinSize)
	}
	if o.MaxUnbindFraction <= 0 {
		o.MaxUnbindFraction = 0.25
	}
	if o.G <= 0 {
		o.G = 1
	}
	if o.Theta <= 0 {
		o.Theta = 0.6
	}
	return nil
}

// Subhalo is one self-bound substructure. Indices reference the input
// arrays; Peak is the index of the subhalo's densest particle.
type Subhalo struct {
	Indices []int
	Peak    int
	// Removed counts members stripped by the unbinding passes.
	Removed int
}

// Count returns the member count.
func (s *Subhalo) Count() int { return len(s.Indices) }

// Result is the outcome of a substructure search over one halo.
type Result struct {
	// Subhalos ordered by descending size. The first entry is typically
	// the halo's central ("main") subhalo containing the background body.
	Subhalos []Subhalo
	// Density holds the estimated local density per input particle.
	Density []float64
	// Candidates counts density-peak candidates before unbinding.
	Candidates int
}

// Find runs the substructure search over one halo's member particles
// (coordinates must be unwrapped — no periodic straddling).
func Find(x, y, z, vx, vy, vz []float64, o Options) (*Result, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	n := len(x)
	for _, s := range [][]float64{y, z, vx, vy, vz} {
		if len(s) != n {
			return nil, fmt.Errorf("subhalo: array length mismatch")
		}
	}
	if n == 0 {
		return &Result{}, nil
	}
	tree, err := bhtree.Build(x, y, z, o.Mass, 8)
	if err != nil {
		return nil, err
	}
	rho, err := tree.Density(bhtree.DensityOptions{K: o.K, UseKernel: o.UseKernel})
	if err != nil {
		return nil, err
	}

	// Iterate particles in decreasing density; attach each to the group of
	// its nearest denser (already-processed) neighbours. Joining two groups
	// marks a saddle point: the smaller group is frozen as a subhalo
	// candidate before being absorbed.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rho[order[a]] != rho[order[b]] {
			return rho[order[a]] > rho[order[b]]
		}
		return order[a] < order[b] // deterministic tie-break
	})
	processed := make([]bool, n)
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	var groups [][]int // live group members
	var peaks []int    // densest particle per live group
	var candidates []Subhalo

	kSearch := o.K
	if kSearch > n {
		kSearch = n
	}
	for _, i := range order {
		idx, _ := tree.KNearest(x[i], y[i], z[i], kSearch)
		// Up to two distinct groups among the nearest processed neighbours,
		// in distance order.
		var g1, g2 = -1, -1
		for _, j := range idx {
			if j == i || !processed[j] {
				continue
			}
			g := find(groupOf, j)
			if g1 == -1 {
				g1 = g
			} else if g != g1 {
				g2 = g
				break
			}
		}
		switch {
		case g1 == -1:
			// Local density peak: new group.
			groupOf[i] = len(groups)
			groups = append(groups, []int{i})
			peaks = append(peaks, i)
		case g2 == -1:
			groups[g1] = append(groups[g1], i)
			groupOf[i] = g1
		default:
			// Saddle point: freeze the smaller group as a candidate, then
			// merge it (and the particle) into the larger.
			small, large := g1, g2
			if len(groups[small]) > len(groups[large]) {
				small, large = large, small
			}
			candidates = append(candidates, Subhalo{
				Indices: append([]int(nil), groups[small]...),
				Peak:    peaks[small],
			})
			groups[large] = append(groups[large], groups[small]...)
			groups[large] = append(groups[large], i)
			groups[small] = nil
			redirect(groupOf, small, large)
			groupOf[i] = large
		}
		processed[i] = true
	}
	// Remaining live groups are candidates too (the largest is the halo's
	// central subhalo).
	for g, members := range groups {
		if members != nil {
			candidates = append(candidates, Subhalo{
				Indices: append([]int(nil), members...),
				Peak:    peaks[g],
			})
		}
	}
	res := &Result{Density: rho, Candidates: len(candidates)}
	for _, cand := range candidates {
		kept, removed := unbind(x, y, z, vx, vy, vz, cand.Indices, o)
		if len(kept) >= o.MinSize {
			sort.Ints(kept)
			res.Subhalos = append(res.Subhalos, Subhalo{Indices: kept, Peak: cand.Peak, Removed: removed})
		}
	}
	sort.Slice(res.Subhalos, func(a, b int) bool {
		if len(res.Subhalos[a].Indices) != len(res.Subhalos[b].Indices) {
			return len(res.Subhalos[a].Indices) > len(res.Subhalos[b].Indices)
		}
		return res.Subhalos[a].Peak < res.Subhalos[b].Peak
	})
	return res, nil
}

// find resolves a particle's group id (groups never chain more than a few
// redirects because redirect() flattens eagerly).
func find(groupOf []int, i int) int { return groupOf[i] }

// redirect rewrites every member of group from to group to.
func redirect(groupOf []int, from, to int) {
	for i, g := range groupOf {
		if g == from {
			groupOf[i] = to
		}
	}
}

// unbind iteratively removes unbound members: per pass, energies are
// computed against the candidate's own mass distribution and bulk
// velocity, and at most MaxUnbindFraction of the positive-energy particles
// (the most energetic first) are removed.
func unbind(x, y, z, vx, vy, vz []float64, members []int, o Options) (kept []int, removed int) {
	cur := append([]int(nil), members...)
	for len(cur) >= o.MinSize {
		// Bulk velocity.
		var mvx, mvy, mvz float64
		for _, i := range cur {
			mvx += vx[i]
			mvy += vy[i]
			mvz += vz[i]
		}
		n := float64(len(cur))
		mvx /= n
		mvy /= n
		mvz /= n
		// Potentials over current members only.
		sx := make([]float64, len(cur))
		sy := make([]float64, len(cur))
		sz := make([]float64, len(cur))
		for k, i := range cur {
			sx[k], sy[k], sz[k] = x[i], y[i], z[i]
		}
		tree, err := bhtree.Build(sx, sy, sz, o.Mass, 8)
		if err != nil {
			return cur, removed
		}
		type en struct {
			pos int // position within cur
			e   float64
		}
		var positive []en
		for k, i := range cur {
			dvx, dvy, dvz := vx[i]-mvx, vy[i]-mvy, vz[i]-mvz
			kin := 0.5 * (dvx*dvx + dvy*dvy + dvz*dvz)
			pot := o.G * tree.ApproxPotential(sx[k], sy[k], sz[k], k, o.Theta, o.Softening)
			if e := kin + pot; e > 0 {
				positive = append(positive, en{k, e})
			}
		}
		if len(positive) == 0 {
			return cur, removed
		}
		sort.Slice(positive, func(a, b int) bool { return positive[a].e > positive[b].e })
		limit := int(math.Ceil(o.MaxUnbindFraction * float64(len(positive))))
		if limit < 1 {
			limit = 1
		}
		if limit > len(positive) {
			limit = len(positive)
		}
		drop := make(map[int]bool, limit)
		for _, p := range positive[:limit] {
			drop[p.pos] = true
		}
		next := cur[:0]
		for k, i := range cur {
			if drop[k] {
				removed++
				continue
			}
			next = append(next, i)
		}
		cur = next
	}
	return cur, removed
}
