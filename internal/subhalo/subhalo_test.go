package subhalo

import (
	"math"
	"math/rand"
	"testing"
)

// boundClump appends n particles in a virialized-ish clump: positions in a
// ball of the given radius around (cx,cy,cz), velocities drawn cold
// (well below escape velocity) around the bulk velocity.
func boundClump(x, y, z, vx, vy, vz *[]float64, n int, cx, cy, cz, radius float64, bulkV [3]float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		r := radius * math.Cbrt(rng.Float64())
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		*x = append(*x, cx+r*math.Sin(theta)*math.Cos(phi))
		*y = append(*y, cy+r*math.Sin(theta)*math.Sin(phi))
		*z = append(*z, cz+r*math.Cos(theta))
		// Cold: tiny random motion.
		*vx = append(*vx, bulkV[0]+rng.NormFloat64()*0.01)
		*vy = append(*vy, bulkV[1]+rng.NormFloat64()*0.01)
		*vz = append(*vz, bulkV[2]+rng.NormFloat64()*0.01)
	}
}

func TestOptionsValidation(t *testing.T) {
	x := []float64{0}
	v := []float64{0}
	if _, err := Find(x, x, x, v, v, v, Options{Mass: 0, K: 8, MinSize: 2}); err == nil {
		t.Error("expected mass error")
	}
	if _, err := Find(x, x, x, v, v, v, Options{Mass: 1, K: 1, MinSize: 2}); err == nil {
		t.Error("expected K error")
	}
	if _, err := Find(x, x, x, v, v, v, Options{Mass: 1, K: 8, MinSize: 0}); err == nil {
		t.Error("expected MinSize error")
	}
	if _, err := Find(x, x, x, v, []float64{0, 1}, v, Options{Mass: 1, K: 8, MinSize: 2}); err == nil {
		t.Error("expected length error")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Find(nil, nil, nil, nil, nil, nil, Options{Mass: 1, K: 8, MinSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subhalos) != 0 {
		t.Errorf("subhalos = %d", len(res.Subhalos))
	}
}

// A single bound clump should come back as one subhalo containing nearly
// all particles.
func TestSingleBoundClump(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y, z, vx, vy, vz []float64
	boundClump(&x, &y, &z, &vx, &vy, &vz, 300, 0, 0, 0, 1, [3]float64{0, 0, 0}, rng)
	res, err := Find(x, y, z, vx, vy, vz, Options{Mass: 1, K: 16, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subhalos) < 1 {
		t.Fatal("no subhalos found")
	}
	if res.Subhalos[0].Count() < 250 {
		t.Errorf("main subhalo has %d of 300", res.Subhalos[0].Count())
	}
	if len(res.Density) != 300 {
		t.Errorf("density count = %d", len(res.Density))
	}
}

// Two well-separated bound clumps inside one "halo" must both be resolved:
// a main subhalo and a satellite.
func TestResolvesTwoClumps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x, y, z, vx, vy, vz []float64
	boundClump(&x, &y, &z, &vx, &vy, &vz, 400, 0, 0, 0, 1.0, [3]float64{0, 0, 0}, rng)
	boundClump(&x, &y, &z, &vx, &vy, &vz, 120, 6, 0, 0, 0.4, [3]float64{0, 0, 0}, rng)
	res, err := Find(x, y, z, vx, vy, vz, Options{Mass: 1, K: 16, MinSize: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subhalos) < 2 {
		t.Fatalf("found %d subhalos, want >= 2 (candidates: %d)", len(res.Subhalos), res.Candidates)
	}
	// The satellite subhalo's members should overwhelmingly be clump-2
	// particles (indices >= 400).
	var satellite *Subhalo
	for i := range res.Subhalos {
		inClump2 := 0
		for _, m := range res.Subhalos[i].Indices {
			if m >= 400 {
				inClump2++
			}
		}
		if inClump2 > res.Subhalos[i].Count()/2 {
			satellite = &res.Subhalos[i]
			break
		}
	}
	if satellite == nil {
		t.Fatal("no subhalo dominated by the satellite clump")
	}
	if satellite.Count() < 60 {
		t.Errorf("satellite kept only %d of 120", satellite.Count())
	}
}

// Particles with enormous velocities are unbound and must be removed.
func TestUnbindingRemovesFastParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x, y, z, vx, vy, vz []float64
	boundClump(&x, &y, &z, &vx, &vy, &vz, 200, 0, 0, 0, 1, [3]float64{0, 0, 0}, rng)
	// 20 interlopers at the same location with huge speeds.
	for i := 0; i < 20; i++ {
		x = append(x, rng.NormFloat64()*0.5)
		y = append(y, rng.NormFloat64()*0.5)
		z = append(z, rng.NormFloat64()*0.5)
		vx = append(vx, 1000+rng.NormFloat64())
		vy = append(vy, 1000)
		vz = append(vz, 0)
	}
	res, err := Find(x, y, z, vx, vy, vz, Options{Mass: 1, K: 16, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subhalos) == 0 {
		t.Fatal("no subhalos")
	}
	main := res.Subhalos[0]
	for _, m := range main.Indices {
		if m >= 200 {
			t.Errorf("unbound interloper %d retained", m)
		}
	}
	if main.Removed == 0 {
		t.Error("expected some unbinding removals")
	}
}

// Multi-pass cap: no more than ceil(1/4 of positive-energy particles) may
// go per pass, so fully unbinding k interlopers takes multiple passes but
// still converges.
func TestUnbindFractionRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x, y, z, vx, vy, vz []float64
	boundClump(&x, &y, &z, &vx, &vy, &vz, 100, 0, 0, 0, 1, [3]float64{0, 0, 0}, rng)
	members := make([]int, 100)
	for i := range members {
		members[i] = i
	}
	o := Options{Mass: 1, K: 16, MinSize: 10}
	if err := o.setDefaults(); err != nil {
		t.Fatal(err)
	}
	kept, removed := unbind(x, y, z, vx, vy, vz, members, o)
	if removed != 0 {
		t.Errorf("cold clump lost %d members", removed)
	}
	if len(kept) != 100 {
		t.Errorf("kept %d", len(kept))
	}
}

// Density ordering: the densest particle must sit deep inside the largest
// clump, not on the outskirts.
func TestDensityPeakLocation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x, y, z, vx, vy, vz []float64
	boundClump(&x, &y, &z, &vx, &vy, &vz, 500, 0, 0, 0, 2, [3]float64{0, 0, 0}, rng)
	res, err := Find(x, y, z, vx, vy, vz, Options{Mass: 1, K: 16, MinSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	best, bestRho := -1, 0.0
	for i, r := range res.Density {
		if r > bestRho {
			best, bestRho = i, r
		}
	}
	r := math.Sqrt(x[best]*x[best] + y[best]*y[best] + z[best]*z[best])
	if r > 1.5 {
		t.Errorf("densest particle at radius %v of a 2-radius clump", r)
	}
}
