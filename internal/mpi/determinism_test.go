package mpi

import (
	"fmt"
	"math"
	"testing"
)

// TestAllReduceDeterministicOrder pins the reduction-order contract of
// AllReduceFloat64: the fold is over the rank-indexed AllGather slice,
// ((v0 + v1) + v2) ..., so the result is bit-identical no matter in
// which order the ranks arrive at the collective. The values are chosen
// so that a different association produces a different bit pattern
// (1e16 + 1 - 1e16 is 0 or 1 or 2 depending on grouping); the ranks are
// released into the collective in several explicit permutations, and
// every rank of every trial must reproduce the serial rank-order fold
// exactly.
func TestAllReduceDeterministicOrder(t *testing.T) {
	vals := []float64{1e16, 1.0, -1e16, 1.0, 0.5, 1e-8, -3.75, 2.0}
	n := len(vals)

	ref := vals[0]
	for _, v := range vals[1:] {
		ref += v
	}
	refBits := math.Float64bits(ref)

	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7}, // rank order
		{7, 6, 5, 4, 3, 2, 1, 0}, // reversed
		{4, 5, 6, 7, 0, 1, 2, 3}, // rotated
		{3, 0, 7, 1, 6, 2, 5, 4}, // interleaved
	}

	for pi, perm := range perms {
		// gates[r] admits rank r into the collective; the driver below
		// opens them in permutation order, and entered serializes the
		// handoff so arrival order follows the permutation.
		gates := make([]chan struct{}, n)
		for i := range gates {
			gates[i] = make(chan struct{})
		}
		entered := make(chan struct{})
		go func() {
			for _, r := range perm {
				close(gates[r])
				<-entered
			}
		}()

		var sums [8]uint64
		err := RunRanks(n, func(c *Comm) error {
			<-gates[c.Rank()]
			entered <- struct{}{}
			s := c.AllReduceSum(vals[c.Rank()])
			sums[c.Rank()] = math.Float64bits(s)
			return nil
		})
		if err != nil {
			t.Fatalf("perm %d: %v", pi, err)
		}
		for r, bits := range sums {
			if bits != refBits {
				t.Errorf("perm %v rank %d: sum = %x (%v), want rank-order fold %x (%v)",
					perm, r, bits, math.Float64frombits(bits), refBits, ref)
			}
		}
	}
}

// TestAllReduceOrderSensitiveValues double-checks the test inputs do
// what the determinism test needs them to: at least one non-rank-order
// fold of the same values yields a different bit pattern. If every
// permutation summed to the same bits, the test above would pass
// vacuously.
func TestAllReduceOrderSensitiveValues(t *testing.T) {
	vals := []float64{1e16, 1.0, -1e16, 1.0, 0.5, 1e-8, -3.75, 2.0}
	ref := vals[0]
	for _, v := range vals[1:] {
		ref += v
	}
	// Reverse-order fold: 1e16 absorbs the small values.
	rev := vals[len(vals)-1]
	for i := len(vals) - 2; i >= 0; i-- {
		rev += vals[i]
	}
	if math.Float64bits(ref) == math.Float64bits(rev) {
		t.Fatalf("fixture values are order-insensitive: both folds give %v; pick harder values", ref)
	}
	if testing.Verbose() {
		fmt.Printf("rank-order fold %v, reverse fold %v\n", ref, rev)
	}
}
