package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("expected error for size 0")
	}
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 {
		t.Errorf("size = %d", w.Size())
	}
}

func TestRunRanksPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := RunRanks(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRanksRejectsZeroRanks(t *testing.T) {
	if err := RunRanks(0, func(*Comm) error { return nil }); err == nil {
		t.Error("expected error")
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	err := RunRanks(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "hello")
			reply := c.Recv(1, 2).(string)
			if reply != "world" {
				return fmt.Errorf("reply = %q", reply)
			}
		} else {
			msg := c.Recv(0, 1).(string)
			if msg != "hello" {
				return fmt.Errorf("msg = %q", msg)
			}
			c.Send(0, 2, "world")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Recv must hold aside messages with other tags so out-of-order tagged
// receives do not mismatch.
func TestRecvTagFiltering(t *testing.T) {
	err := RunRanks(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 10, "first")
			c.Send(1, 20, "second")
			return nil
		}
		// Receive in the opposite order of sending.
		second := c.Recv(0, 20).(string)
		first := c.Recv(0, 10).(string)
		if first != "first" || second != "second" {
			return fmt.Errorf("got %q %q", first, second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var before, after int32
	err := RunRanks(8, func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != 8 {
			return fmt.Errorf("rank %d passed barrier with before=%d", c.Rank(), before)
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 8 {
		t.Errorf("after = %d", after)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	err := RunRanks(4, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherOrderedByRank(t *testing.T) {
	err := RunRanks(5, func(c *Comm) error {
		all := c.AllGather(c.Rank() * 10)
		for r, v := range all {
			if v.(int) != r*10 {
				return fmt.Errorf("rank %d: all[%d] = %v", c.Rank(), r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherRepeatedRounds(t *testing.T) {
	err := RunRanks(3, func(c *Comm) error {
		for round := 0; round < 50; round++ {
			all := c.AllGather(c.Rank() + round*100)
			for r, v := range all {
				if v.(int) != r+round*100 {
					return fmt.Errorf("round %d rank %d: all[%d] = %v", round, c.Rank(), r, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceOps(t *testing.T) {
	err := RunRanks(6, func(c *Comm) error {
		v := float64(c.Rank() + 1)
		if s := c.AllReduceSum(v); math.Abs(s-21) > 1e-12 {
			return fmt.Errorf("sum = %v", s)
		}
		if m := c.AllReduceMax(v); m != 6 {
			return fmt.Errorf("max = %v", m)
		}
		if m := c.AllReduceMin(v); m != 1 {
			return fmt.Errorf("min = %v", m)
		}
		if n := c.AllReduceSumInt(2); n != 12 {
			return fmt.Errorf("sumint = %v", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllExchangesEverything(t *testing.T) {
	err := RunRanks(4, func(c *Comm) error {
		out := make([]any, 4)
		for d := range out {
			out[d] = fmt.Sprintf("%d->%d", c.Rank(), d)
		}
		in := c.AllToAll(out)
		for s := range in {
			want := fmt.Sprintf("%d->%d", s, c.Rank())
			if in[s].(string) != want {
				return fmt.Errorf("in[%d] = %v, want %v", s, in[s], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllRepeated(t *testing.T) {
	err := RunRanks(3, func(c *Comm) error {
		for round := 0; round < 20; round++ {
			out := make([]any, 3)
			for d := range out {
				out[d] = c.Rank()*100 + d + round*1000
			}
			in := c.AllToAll(out)
			for s := range in {
				want := s*100 + c.Rank() + round*1000
				if in[s].(int) != want {
					return fmt.Errorf("round %d: in[%d] = %v, want %d", round, s, in[s], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := RunRanks(4, func(c *Comm) error {
		val := "unset"
		if c.Rank() == 2 {
			val = "payload"
		}
		got := c.Bcast(2, val).(string)
		if got != "payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	err := RunRanks(1, func(c *Comm) error {
		c.Barrier()
		if s := c.AllReduceSum(3); s != 3 {
			return fmt.Errorf("sum = %v", s)
		}
		in := c.AllToAll([]any{42})
		if in[0].(int) != 42 {
			return fmt.Errorf("alltoall = %v", in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherToRoot(t *testing.T) {
	err := RunRanks(4, func(c *Comm) error {
		got := c.Gather(2, c.Rank()*11)
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("rank %d received a gather result", c.Rank())
			}
			return nil
		}
		for r, v := range got {
			if v.(int) != r*11 {
				return fmt.Errorf("gather[%d] = %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterFromRoot(t *testing.T) {
	err := RunRanks(4, func(c *Comm) error {
		var vals []any
		if c.Rank() == 1 {
			vals = []any{"a", "b", "c", "d"}
		}
		got := c.Scatter(1, vals).(string)
		want := string(rune('a' + c.Rank()))
		if got != want {
			return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterRepeated(t *testing.T) {
	err := RunRanks(3, func(c *Comm) error {
		for round := 0; round < 20; round++ {
			var vals []any
			if c.Rank() == 0 {
				vals = []any{round * 100, round*100 + 1, round*100 + 2}
			}
			got := c.Scatter(0, vals).(int)
			if got != round*100+c.Rank() {
				return fmt.Errorf("round %d rank %d got %d", round, c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
