// Package mpi is an in-process message-passing runtime standing in for MPI.
//
// The paper's parallel analysis — overload-region exchange, halo ownership
// reconciliation, particle redistribution after off-line reads — is
// expressed over MPI ranks. Here each rank is a goroutine and the
// communicator routes typed messages over per-pair buffered channels, so
// the identical communication patterns (neighbour exchange, alltoall
// redistribution, reductions) run unchanged; only the transport differs
// from the paper's hardware (see DESIGN.md §2).
package mpi

import (
	"fmt"
	"sync"
)

// message is one tagged payload in flight between two ranks.
type message struct {
	tag     int
	payload any
}

// World owns the channel mesh for a fixed number of ranks.
type World struct {
	size  int
	pipes [][]chan message // pipes[src][dst]

	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierC   *sync.Cond

	reduceMu  sync.Mutex
	reduceBuf map[int][]any // collective generation -> contributions by rank
}

// NewWorld creates a communicator world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", size)
	}
	w := &World{size: size, reduceBuf: map[int][]any{}}
	w.pipes = make([][]chan message, size)
	for s := range w.pipes {
		w.pipes[s] = make([]chan message, size)
		for d := range w.pipes[s] {
			// Generous buffering: analysis exchanges post all sends before
			// receiving, the classic MPI_Isend pattern.
			w.pipes[s][d] = make(chan message, 1024)
		}
	}
	w.barrierC = sync.NewCond(&w.barrierMu)
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm is one rank's handle onto the world.
type Comm struct {
	world *World
	rank  int
	// redGen counts collective calls made by this rank so that concurrent
	// collectives from successive supersteps do not mix.
	redGen int
}

// Rank returns the caller's rank id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Send delivers payload to rank dst with the given tag. Send never blocks
// unless the destination's buffer (1024 in-flight messages) is full, which
// matches the eager protocol small analysis messages rely on.
func (c *Comm) Send(dst, tag int, payload any) {
	c.world.pipes[c.rank][dst] <- message{tag, payload}
}

// Recv blocks until a message with the given tag arrives from rank src and
// returns its payload. Messages with other tags from the same source are
// held aside in order, so tagged exchanges cannot deadlock on reordering.
func (c *Comm) Recv(src, tag int) any {
	// Each (src,dst) pair is a FIFO used by one receiving goroutine, so a
	// simple scan-with-stash suffices.
	pipe := c.world.pipes[src][c.rank]
	var stash []message
	for {
		m := <-pipe
		if m.tag == tag {
			// Requeue stashed messages in order.
			for _, s := range stash {
				pipe <- s
			}
			return m.payload
		}
		stash = append(stash, m)
	}
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierN++
	if w.barrierN == w.size {
		w.barrierN = 0
		w.barrierGen++
		w.barrierC.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierC.Wait()
		}
	}
	w.barrierMu.Unlock()
}

// gatherSlot is a rank's contribution to one collective round.
type gatherSlot struct {
	rank int
	val  any
}

// AllGather collects each rank's value and returns the slice indexed by
// rank, identical on every rank.
func (c *Comm) AllGather(val any) []any {
	w := c.world
	gen := c.redGen
	c.redGen++
	key := gen
	w.reduceMu.Lock()
	if w.reduceBuf[key] == nil {
		w.reduceBuf[key] = make([]any, w.size)
	}
	w.reduceBuf[key][c.rank] = gatherSlot{c.rank, val}
	w.reduceMu.Unlock()
	c.Barrier()
	w.reduceMu.Lock()
	buf := w.reduceBuf[key]
	w.reduceMu.Unlock()
	out := make([]any, w.size)
	for i, s := range buf {
		out[i] = s.(gatherSlot).val
	}
	c.Barrier() // all ranks copied before anyone reuses the slot
	if c.rank == 0 {
		w.reduceMu.Lock()
		delete(w.reduceBuf, key)
		w.reduceMu.Unlock()
	}
	return out
}

// AllReduceFloat64 combines each rank's value with op (associative and
// commutative) and returns the result on every rank.
//
// The reduction order is deterministic: values are folded in rank order
// (((v0 op v1) op v2) ... op vN-1), regardless of the order in which
// ranks arrive at the collective. AllGather stores each contribution in
// its rank's slot, so goroutine scheduling cannot reorder the fold.
// Floating-point addition is not associative — a scheduling-dependent
// order would make campaign results differ bit-for-bit run to run,
// breaking the bit-identical-restart contract the checkpoint layer
// verifies. Every rank computes the same fold over the same slice, so
// all ranks return bit-identical results. Pinned by
// TestAllReduceDeterministicOrder.
func (c *Comm) AllReduceFloat64(val float64, op func(a, b float64) float64) float64 {
	all := c.AllGather(val)
	acc := all[0].(float64)
	for _, v := range all[1:] {
		acc = op(acc, v.(float64))
	}
	return acc
}

// AllReduceSum sums a float64 across all ranks.
func (c *Comm) AllReduceSum(val float64) float64 {
	return c.AllReduceFloat64(val, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum across all ranks.
func (c *Comm) AllReduceMax(val float64) float64 {
	return c.AllReduceFloat64(val, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceMin takes the minimum across all ranks.
func (c *Comm) AllReduceMin(val float64) float64 {
	return c.AllReduceFloat64(val, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

// AllReduceSumInt sums an int across all ranks.
func (c *Comm) AllReduceSumInt(val int) int {
	return int(c.AllReduceSum(float64(val)))
}

// alltoallTag is reserved for AllToAll exchanges.
const alltoallTag = -7701

// AllToAll sends out[d] to rank d and returns in[s] received from each rank
// s. Every rank must call it in the same superstep.
func (c *Comm) AllToAll(out []any) []any {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: AllToAll payload count %d != world size %d", len(out), c.Size()))
	}
	for d := 0; d < c.Size(); d++ {
		if d == c.rank {
			continue
		}
		c.Send(d, alltoallTag, out[d])
	}
	in := make([]any, c.Size())
	in[c.rank] = out[c.rank]
	for s := 0; s < c.Size(); s++ {
		if s == c.rank {
			continue
		}
		in[s] = c.Recv(s, alltoallTag)
	}
	c.Barrier()
	return in
}

// Bcast returns root's value on every rank.
func (c *Comm) Bcast(root int, val any) any {
	return c.AllGather(val)[root]
}

// RunRanks launches fn on n ranks (one goroutine each) and waits for all to
// finish, returning the first non-nil error by rank order.
func RunRanks(n int, fn func(c *Comm) error) error {
	w, err := NewWorld(n)
	if err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Gather collects each rank's value onto root (rank-indexed); other ranks
// receive nil.
func (c *Comm) Gather(root int, val any) []any {
	all := c.AllGather(val)
	if c.rank != root {
		return nil
	}
	return all
}

// Scatter distributes root's values (one per rank) to every rank; vals is
// ignored on non-root ranks.
func (c *Comm) Scatter(root int, vals []any) any {
	const scatterTag = -7702
	if c.rank == root {
		if len(vals) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter value count %d != world size %d", len(vals), c.Size()))
		}
		for d := 0; d < c.Size(); d++ {
			if d == root {
				continue
			}
			c.Send(d, scatterTag, vals[d])
		}
		//lint:allow mpicollective collective implementation: both the root and non-root arms end in Barrier, so arrival is symmetric
		c.Barrier()
		//lint:allow mpicollective the non-root path below also reaches Barrier before returning
		return vals[root]
	}
	v := c.Recv(root, scatterTag)
	c.Barrier()
	return v
}
