package ic

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/powerspec"
)

func TestOptionsValidate(t *testing.T) {
	good := Options{NP: 16, Box: 50, ZInit: 50, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{NP: 15, Box: 50, ZInit: 50},
		{NP: 16, Box: 0, ZInit: 50},
		{NP: 16, Box: 50, ZInit: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateDeterministicAndInBox(t *testing.T) {
	c := cosmo.Default()
	o := Options{NP: 16, Box: 50, ZInit: 50, Seed: 42}
	p1, a1, err := Generate(c, o)
	if err != nil {
		t.Fatal(err)
	}
	p2, a2, err := Generate(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || math.Abs(a1-1.0/51) > 1e-12 {
		t.Errorf("a = %v, %v", a1, a2)
	}
	if p1.N() != 16*16*16 {
		t.Fatalf("N = %d", p1.N())
	}
	for i := 0; i < p1.N(); i++ {
		if p1.X[i] != p2.X[i] || p1.VZ[i] != p2.VZ[i] {
			t.Fatal("same seed produced different ICs")
		}
		if p1.X[i] < 0 || p1.X[i] >= o.Box || p1.Y[i] < 0 || p1.Y[i] >= o.Box || p1.Z[i] < 0 || p1.Z[i] >= o.Box {
			t.Fatalf("particle %d outside box: (%v,%v,%v)", i, p1.X[i], p1.Y[i], p1.Z[i])
		}
	}
	// Different seed should differ.
	p3, _, err := Generate(c, Options{NP: 16, Box: 50, ZInit: 50, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < p1.N(); i++ {
		if p1.X[i] != p3.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical ICs")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, _, err := Generate(cosmo.Params{}, Options{NP: 16, Box: 50, ZInit: 50}); err == nil {
		t.Error("expected cosmology error")
	}
	if _, _, err := Generate(cosmo.Default(), Options{NP: 3, Box: 50, ZInit: 50}); err == nil {
		t.Error("expected options error")
	}
}

func TestGenerateTagsAreUnique(t *testing.T) {
	p, _, err := Generate(cosmo.Default(), Options{NP: 8, Box: 20, ZInit: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, p.N())
	for _, tag := range p.Tag {
		if seen[tag] {
			t.Fatalf("duplicate tag %d", tag)
		}
		seen[tag] = true
	}
}

// Displacements should be small at high z: particles stay near their
// lattice sites and mean displacement is well below a cell.
func TestDisplacementsSmallAtHighRedshift(t *testing.T) {
	c := cosmo.Default()
	o := Options{NP: 16, Box: 50, ZInit: 100, Seed: 5}
	p, _, err := Generate(c, o)
	if err != nil {
		t.Fatal(err)
	}
	dq := o.Box / float64(o.NP)
	idx := 0
	sum := 0.0
	for i := 0; i < o.NP; i++ {
		for j := 0; j < o.NP; j++ {
			for k := 0; k < o.NP; k++ {
				qx := (float64(i) + 0.5) * dq
				dx := p.X[idx] - qx
				dx -= o.Box * math.Round(dx/o.Box)
				sum += math.Abs(dx)
				idx++
			}
		}
	}
	mean := sum / float64(p.N())
	if mean > dq/2 {
		t.Errorf("mean |displacement| = %v, want << cell %v at z=100", mean, dq)
	}
	if mean == 0 {
		t.Error("displacements identically zero")
	}
}

// The measured power spectrum of the generated field must match the linear
// theory input scaled by D²(a) on large scales.
func TestGeneratedPowerSpectrumMatchesLinearTheory(t *testing.T) {
	c := cosmo.Default()
	o := Options{NP: 32, Box: 100, ZInit: 20, Seed: 11}
	p, a, err := Generate(c, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := powerspec.Measure(p, o.Box, o.NP, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := c.GrowthFactor(a)
	// Compare the first few (large-scale) bins; CIC smoothing and shot
	// noise distort small scales.
	checked := 0
	for b := 0; b < 3; b++ {
		if res.Modes[b] < 10 {
			continue
		}
		want := c.PowerSpectrum(res.K[b]) * d * d
		ratio := res.P[b] / want
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("bin %d (k=%.3f): measured/theory = %v", b, res.K[b], ratio)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no bins checked")
	}
}

// GaussianField obeys Hermitian symmetry implicitly (real input), so the
// inverse transform must be (numerically) real.
func TestGaussianFieldIsReal(t *testing.T) {
	c := cosmo.Default()
	cube, err := GaussianField(c, 16, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Inverse3D(); err != nil {
		t.Fatal(err)
	}
	maxIm, maxRe := 0.0, 0.0
	for _, v := range cube.Data {
		if im := math.Abs(imag(v)); im > maxIm {
			maxIm = im
		}
		if re := math.Abs(real(v)); re > maxRe {
			maxRe = re
		}
	}
	if maxIm > 1e-9*maxRe {
		t.Errorf("imaginary residue %v vs real %v", maxIm, maxRe)
	}
}

// The zero mode must vanish: a mean-zero density contrast.
func TestGaussianFieldZeroMean(t *testing.T) {
	c := cosmo.Default()
	cube, err := GaussianField(c, 16, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cube.At(0, 0, 0) != 0 {
		t.Errorf("k=0 mode = %v", cube.At(0, 0, 0))
	}
	_ = fft.IsPow2
}
