// Package ic generates cosmological initial conditions: a Gaussian random
// density field drawn from the linear ΛCDM power spectrum, converted to
// particle positions and momenta with the Zel'dovich approximation.
//
// The Q Continuum simulation the paper analyzes "started at z = 200" (§4.1)
// from exactly this kind of first-order Lagrangian perturbation theory
// setup. The construction here follows the standard recipe: white Gaussian
// noise on the grid, shaped in Fourier space by sqrt(P(k)), displacement
// field psi(k) = i k delta(k)/k², particles displaced off a uniform lattice
// by D(a) psi with momenta f D a² E(a) psi.
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/nbody"
)

// Options configures initial-condition generation.
type Options struct {
	// NP is the number of particles per dimension (NP³ total).
	NP int
	// Box is the comoving box side in Mpc/h.
	Box float64
	// ZInit is the starting redshift (the paper's runs start at z=200; small
	// test boxes typically use 50 or lower).
	ZInit float64
	// Seed seeds the Gaussian random field; runs with equal seeds are
	// bit-identical.
	Seed int64
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case !fft.IsPow2(o.NP):
		return fmt.Errorf("ic: NP=%d must be a power of two", o.NP)
	case o.Box <= 0:
		return fmt.Errorf("ic: box=%g must be positive", o.Box)
	case o.ZInit <= 0:
		return fmt.Errorf("ic: zInit=%g must be positive", o.ZInit)
	}
	return nil
}

// GaussianField fills a cube with the Fourier modes of a Gaussian random
// density contrast field at z=0 whose measured power spectrum is P(k):
// real white noise is laid on the grid and shaped by sqrt(P(k) N³ / V).
// The returned cube is in k-space.
func GaussianField(p cosmo.Params, np int, box float64, seed int64) (*fft.Cube, error) {
	cube, err := fft.NewCube(np)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range cube.Data {
		cube.Data[i] = complex(rng.NormFloat64(), 0)
	}
	if err := cube.Forward3D(); err != nil {
		return nil, err
	}
	n3 := float64(np * np * np)
	vol := box * box * box
	for i := 0; i < np; i++ {
		kx := fft.WaveNumber(i, np, box)
		for j := 0; j < np; j++ {
			ky := fft.WaveNumber(j, np, box)
			for k := 0; k < np; k++ {
				kz := fft.WaveNumber(k, np, box)
				kk := math.Sqrt(kx*kx + ky*ky + kz*kz)
				idx := cube.Index(i, j, k)
				if kk == 0 {
					cube.Data[idx] = 0
					continue
				}
				amp := math.Sqrt(p.PowerSpectrum(kk) * n3 / vol)
				cube.Data[idx] *= complex(amp, 0)
			}
		}
	}
	return cube, nil
}

// displacementComponent converts delta(k) into one Cartesian component of
// the Zel'dovich displacement field psi(k) = i k_axis delta(k)/k² and
// returns it in real space.
func displacementComponent(deltaK *fft.Cube, box float64, axis int) ([]float64, error) {
	np := deltaK.N
	comp, err := fft.NewCube(np)
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		kx := fft.WaveNumber(i, np, box)
		for j := 0; j < np; j++ {
			ky := fft.WaveNumber(j, np, box)
			for k := 0; k < np; k++ {
				kz := fft.WaveNumber(k, np, box)
				k2 := kx*kx + ky*ky + kz*kz
				idx := deltaK.Index(i, j, k)
				if k2 == 0 {
					comp.Data[idx] = 0
					continue
				}
				var ka float64
				switch axis {
				case 0:
					ka = kx
				case 1:
					ka = ky
				default:
					ka = kz
				}
				comp.Data[idx] = deltaK.Data[idx] * complex(0, ka/k2)
			}
		}
	}
	if err := comp.Inverse3D(); err != nil {
		return nil, err
	}
	out := make([]float64, len(comp.Data))
	for i, v := range comp.Data {
		out[i] = real(v)
	}
	return out, nil
}

// Generate builds Zel'dovich initial conditions and returns the particles
// together with the starting scale factor.
func Generate(p cosmo.Params, o Options) (*nbody.Particles, float64, error) {
	if err := o.Validate(); err != nil {
		return nil, 0, err
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	deltaK, err := GaussianField(p, o.NP, o.Box, o.Seed)
	if err != nil {
		return nil, 0, err
	}
	var psi [3][]float64
	for axis := 0; axis < 3; axis++ {
		if psi[axis], err = displacementComponent(deltaK, o.Box, axis); err != nil {
			return nil, 0, err
		}
	}
	a := cosmo.ScaleFactor(o.ZInit)
	d := p.GrowthFactor(a)
	f := p.GrowthRate(a)
	e := p.E(a)
	velFactor := f * d * a * a * e

	np := o.NP
	parts := nbody.NewParticles(np * np * np)
	dq := o.Box / float64(np)
	idx := 0
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			for k := 0; k < np; k++ {
				flat := (i*np+j)*np + k
				qx := (float64(i) + 0.5) * dq
				qy := (float64(j) + 0.5) * dq
				qz := (float64(k) + 0.5) * dq
				parts.X[idx] = wrap(qx+d*psi[0][flat], o.Box)
				parts.Y[idx] = wrap(qy+d*psi[1][flat], o.Box)
				parts.Z[idx] = wrap(qz+d*psi[2][flat], o.Box)
				parts.VX[idx] = velFactor * psi[0][flat]
				parts.VY[idx] = velFactor * psi[1][flat]
				parts.VZ[idx] = velFactor * psi[2][flat]
				parts.Tag[idx] = int64(flat)
				idx++
			}
		}
	}
	return parts, a, nil
}

func wrap(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}
