package catalog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cosmotools"
)

func sample() []cosmotools.CenterRecord {
	return []cosmotools.CenterRecord{
		{HaloTag: 17, MBPTag: 22886, Pos: [3]float64{12.3, 4.5, 0.8}, Potential: -3.1e13, Count: 842},
		{HaloTag: 3, MBPTag: 10245, Pos: [3]float64{1, 2, 3}, Potential: -9.9e12, Count: 120},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), Header) {
		t.Error("missing header")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	// Sorted by tag on write.
	if got[0].HaloTag != 3 || got[1].HaloTag != 17 {
		t.Errorf("order = %d, %d", got[0].HaloTag, got[1].HaloTag)
	}
	if got[1].MBPTag != 22886 || got[1].Count != 842 {
		t.Errorf("record = %+v", got[1])
	}
	if got[1].Pos[0] != 12.3 {
		t.Errorf("pos = %v", got[1].Pos)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 2 3 4 5 6",               // 6 fields
		"x 2 1.0 1.0 1.0 -1 5",      // bad tag
		"1 y 1.0 1.0 1.0 -1 5",      // bad mbp
		"1 2 zz 1.0 1.0 -1 5",       // bad pos
		"1 2 1.0 1.0 1.0 ww 5",      // bad potential
		"1 2 1.0 1.0 1.0 -1 notint", // bad count
	}
	for i, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
	// Comments and blanks are fine.
	got, err := Read(strings.NewReader("# comment\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("comment-only: %v %v", got, err)
	}
}

func TestFileRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	inSitu := filepath.Join(dir, "insitu.centers")
	offline := filepath.Join(dir, "offline.centers")
	if err := WriteFile(inSitu, []cosmotools.CenterRecord{
		{HaloTag: 1, MBPTag: 11, Count: 50},
		{HaloTag: 5, MBPTag: 55, Count: 900}, // placeholder, superseded
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(offline, []cosmotools.CenterRecord{
		{HaloTag: 5, MBPTag: 99, Count: 900},
		{HaloTag: 9, MBPTag: 91, Count: 1200},
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeFiles([]string{inSitu, offline})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged[0].HaloTag != 1 || merged[1].HaloTag != 5 || merged[2].HaloTag != 9 {
		t.Errorf("order = %+v", merged)
	}
	if merged[1].MBPTag != 99 {
		t.Error("later catalog should supersede")
	}
	if _, err := MergeFiles(nil); err == nil {
		t.Error("expected no-input error")
	}
	if _, err := MergeFiles([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("expected missing-file error")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("expected read error")
	}
}

func TestReadRejectsNonFiniteCoordinates(t *testing.T) {
	bad := []string{
		"1 2 NaN 1.0 1.0 -1 5",
		"1 2 1.0 +Inf 1.0 -1 5",
		"1 2 1.0 1.0 -Inf -1 5",
	}
	for i, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("case %d: non-finite coordinate was accepted", i)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("case %d: error %v does not name the non-finite coordinate", i, err)
		}
	}
	// A non-finite potential is physically meaningful garbage the reader
	// still parses; only positions are gated.
	if _, err := Read(strings.NewReader("1 2 1.0 1.0 1.0 -Inf 5\n")); err != nil {
		t.Errorf("potential gating is not this guard's job: %v", err)
	}
}

// MergeFiles must be idempotent: merging the merged output (or repeating
// an input) changes nothing — the property the campaign resume path leans
// on when analyses are redone after a crash.
func TestMergeFilesIdempotent(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.centers")
	b := filepath.Join(dir, "b.centers")
	if err := WriteFile(a, sample()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(b, []cosmotools.CenterRecord{
		{HaloTag: 17, MBPTag: 1, Pos: [3]float64{9, 9, 9}, Potential: -1, Count: 843},
		{HaloTag: 40, MBPTag: 2, Pos: [3]float64{5, 5, 5}, Potential: -2, Count: 77},
	}); err != nil {
		t.Fatal(err)
	}
	once, err := MergeFiles([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.centers")
	if err := WriteFile(merged, once); err != nil {
		t.Fatal(err)
	}
	for i, paths := range [][]string{
		{a, b, b},        // repeated input
		{a, b, merged},   // merged output folded back in
		{merged, merged}, // pure self-merge
		{merged, a, b},   // order variations with the same winners
	} {
		again, err := MergeFiles(paths)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(once) {
			t.Errorf("case %d: %d records, want %d", i, len(again), len(once))
			continue
		}
		for k := range once {
			if again[k] != once[k] {
				t.Errorf("case %d: record %d = %+v, want %+v", i, k, again[k], once[k])
			}
		}
	}
}

// A corrupt input poisons a strict merge wholesale — MergeFiles must never
// silently fold garbage into a science catalog.
func TestMergeFilesRejectsCorruptInput(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.centers")
	if err := WriteFile(good, sample()); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.centers")
	if err := os.WriteFile(bad, []byte("7 8 1.0 NaN 1.0 -2 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFiles([]string{good, bad}); err == nil {
		t.Fatal("MergeFiles merged a corrupt input without error")
	}
}

func TestMergeFilesCheckedSkipsAndReports(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.centers")
	if err := WriteFile(good, sample()); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.centers")
	if err := os.WriteFile(bad, []byte("\x00\x01garbage bytes not a catalog\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	records, skipped, err := MergeFilesChecked([]string{bad, good})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(sample()) {
		t.Errorf("merged %d records, want %d from the intact input", len(records), len(sample()))
	}
	if len(skipped) != 1 || skipped[0].Path != bad || skipped[0].Err == nil {
		t.Errorf("skipped = %+v, want the corrupt input reported", skipped)
	}

	// When every input is corrupt there is nothing to merge: that is an
	// error, not an empty catalog.
	if _, skipped, err := MergeFilesChecked([]string{bad}); err == nil || len(skipped) != 1 {
		t.Errorf("all-corrupt merge: err=%v skipped=%+v, want wholesale error", err, skipped)
	}
}
