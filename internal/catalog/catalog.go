// Package catalog reads, writes and merges halo-center catalogs — the
// Level 3 products the workflow delivers. The text format is the one
// cmd/hacc-sim and cmd/cosmotools emit:
//
//	# halo_tag mbp_tag x y z potential count
//	17 22886 12.3 4.5 0.8 -3.1e+13 842
//
// Merging reconciles the in-situ and off-line halves of the combined
// workflow — "In a final step, the two files from the Titan and Moonlight
// analysis were merged to provide a complete set of halo centers and
// properties" (§4.1). cmd/catalog-merge wraps this package.
package catalog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/cosmotools"
)

// Header is the canonical first line.
const Header = "# halo_tag mbp_tag x y z potential count"

// Write emits records in the canonical text format, sorted by halo tag.
func Write(w io.Writer, records []cosmotools.CenterRecord) error {
	sorted := append([]cosmotools.CenterRecord(nil), records...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].HaloTag < sorted[b].HaloTag })
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, Header); err != nil {
		return err
	}
	for _, r := range sorted {
		if _, err := fmt.Fprintf(bw, "%d %d %.6f %.6f %.6f %.6g %d\n",
			r.HaloTag, r.MBPTag, r.Pos[0], r.Pos[1], r.Pos[2], r.Potential, r.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a catalog stream. Blank lines and comments are skipped;
// malformed lines are errors (silent data loss in a science catalog is
// unacceptable).
func Read(r io.Reader) ([]cosmotools.CenterRecord, error) {
	var out []cosmotools.CenterRecord
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 7 {
			return nil, fmt.Errorf("catalog line %d: %d fields, want 7", lineNo, len(fields))
		}
		var rec cosmotools.CenterRecord
		var err error
		if rec.HaloTag, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("catalog line %d: halo tag: %w", lineNo, err)
		}
		if rec.MBPTag, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("catalog line %d: mbp tag: %w", lineNo, err)
		}
		for a := 0; a < 3; a++ {
			if rec.Pos[a], err = strconv.ParseFloat(fields[2+a], 64); err != nil {
				return nil, fmt.Errorf("catalog line %d: position: %w", lineNo, err)
			}
			if math.IsNaN(rec.Pos[a]) || math.IsInf(rec.Pos[a], 0) {
				// A non-finite coordinate is corruption, not data: a halo
				// center is a particle position inside the box.
				return nil, fmt.Errorf("catalog line %d: non-finite coordinate %q", lineNo, fields[2+a])
			}
		}
		if rec.Potential, err = strconv.ParseFloat(fields[5], 64); err != nil {
			return nil, fmt.Errorf("catalog line %d: potential: %w", lineNo, err)
		}
		if rec.Count, err = strconv.Atoi(fields[6]); err != nil {
			return nil, fmt.Errorf("catalog line %d: count: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFile parses a catalog from a path.
func ReadFile(path string) ([]cosmotools.CenterRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes a catalog to a path, committing it atomically so the
// merge step never reads a half-written Level 3 product.
func WriteFile(path string, records []cosmotools.CenterRecord) error {
	var buf bytes.Buffer
	if err := Write(&buf, records); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, buf.Bytes())
}

// MergeFiles reads every input catalog and reconciles them in order: later
// files supersede earlier ones on duplicate halo tags (so the off-line
// catalog is passed last, matching cosmotools.MergeCenters semantics).
func MergeFiles(paths []string) ([]cosmotools.CenterRecord, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("catalog: no input files")
	}
	byTag := map[int64]cosmotools.CenterRecord{}
	for _, path := range paths {
		records, err := ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", path, err)
		}
		for _, r := range records {
			byTag[r.HaloTag] = r
		}
	}
	out := make([]cosmotools.CenterRecord, 0, len(byTag))
	for _, r := range byTag {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].HaloTag < out[b].HaloTag })
	return out, nil
}

// SkippedInput names one input catalog MergeFilesChecked refused to merge
// and why.
type SkippedInput struct {
	Path string
	Err  error
}

// MergeFilesChecked merges like MergeFiles but degrades instead of failing
// wholesale: an input that does not parse — corrupt bytes, malformed lines
// — is skipped and reported, never silently merged as garbage. It errors
// only when no input survives (a merge of nothing is not a catalog).
func MergeFilesChecked(paths []string) ([]cosmotools.CenterRecord, []SkippedInput, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("catalog: no input files")
	}
	var skipped []SkippedInput
	byTag := map[int64]cosmotools.CenterRecord{}
	for _, path := range paths {
		records, err := ReadFile(path)
		if err != nil {
			skipped = append(skipped, SkippedInput{Path: path, Err: err})
			continue
		}
		for _, r := range records {
			byTag[r.HaloTag] = r
		}
	}
	if len(skipped) == len(paths) {
		return nil, skipped, fmt.Errorf("catalog: all %d input files corrupt (first: %s: %w)", len(paths), skipped[0].Path, skipped[0].Err)
	}
	out := make([]cosmotools.CenterRecord, 0, len(byTag))
	for _, r := range byTag {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].HaloTag < out[b].HaloTag })
	return out, skipped, nil
}
