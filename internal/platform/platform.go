// Package platform models the HPC machines of the paper's evaluation —
// Titan (OLCF's Cray XK7 with K20X GPUs), Moonlight (LANL's M2090 GPU
// cluster) and Rhea (OLCF's CPU analysis cluster) — together with the
// calibrated per-kernel cost models that project analysis times onto them.
//
// These models are the substitution for hardware this reproduction cannot
// access (DESIGN.md §2). Every constant is anchored either to a number the
// paper states outright (charging policy, GPU/CPU factor of ~50,
// Moonlight/Titan factor of 0.55, 20 TB read in ~10 minutes) or to
// per-particle costs measured by running this repository's real analysis
// kernels (see EXPERIMENTS.md). The discrete-event workflow engine
// (internal/core) consumes these models to regenerate Tables 2-4 and
// Figures 3-4.
package platform

import (
	"fmt"
	"math"
)

// Machine describes one HPC platform.
type Machine struct {
	// Name for reports.
	Name string
	// Nodes available in total.
	Nodes int
	// CoresPerNode physical CPU cores per node.
	CoresPerNode int
	// ChargeFactor is core-hours charged per node-hour. "an hour per node
	// leads to a charge of 30 core hours" on Titan (Table 3 caption) — the
	// GPU premium over the 16 CPU cores.
	ChargeFactor float64
	// HasGPU reports accelerator availability (Rhea "does not currently
	// have GPUs", §3.2).
	HasGPU bool
	// GPUFactor is the speedup of the data-parallel center finder on one
	// node's GPU over one CPU core — the paper's "approximately a factor
	// of fifty speed-up" (§4.1) for Titan's K20X.
	GPUFactor float64
	// CPUFactor scales kernel times relative to Titan (1.0): Moonlight's
	// older hardware makes Titan "faster by a factor of roughly 0.55"
	// (§4.1), so Moonlight carries 1/0.55.
	CPUFactor float64
	// IOBandwidth is the aggregate file-system bandwidth cap in bytes/s
	// (the Lustre peak a full-machine job can approach).
	IOBandwidth float64
	// PerNodeIOBandwidth is the file-system bandwidth one compute node can
	// drive; a job's I/O rate is min(IOBandwidth, nodes·PerNodeIOBandwidth).
	// Calibrated from Table 4: 40 GB Level 1 written/read in ~5 s by a
	// 32-node job -> ~250 MB/s/node.
	PerNodeIOBandwidth float64
	// NetBandwidth is the aggregate interconnect cap in bytes/s for
	// particle redistribution at full machine scale.
	NetBandwidth float64
	// PerNodeNetBandwidth is the per-node alltoall redistribution rate
	// before the log(nodes) collective penalty. Calibrated from Table 4's
	// 435 s to redistribute 40 GB over 32 nodes (~2.9 MB/s/node effective,
	// i.e. ~14 MB/s/node before the log2(32) factor); the same constants
	// put the Q Continuum's 20 TB full-machine redistribution at the
	// paper's ~10-minute scale.
	PerNodeNetBandwidth float64
	// SmallJobLimit, when > 0, caps how many sub-SmallJobNodes jobs run
	// simultaneously ("The queue policy only allows two jobs that use less
	// than 125 nodes to run simultaneously", §3.2).
	SmallJobLimit int
	SmallJobNodes int
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("platform: %s has %d nodes", m.Name, m.Nodes)
	case m.ChargeFactor <= 0:
		return fmt.Errorf("platform: %s charge factor %g", m.Name, m.ChargeFactor)
	case m.CPUFactor <= 0:
		return fmt.Errorf("platform: %s CPU factor %g", m.Name, m.CPUFactor)
	case m.IOBandwidth <= 0 || m.NetBandwidth <= 0:
		return fmt.Errorf("platform: %s bandwidths must be positive", m.Name)
	}
	return nil
}

// ChargeCoreHours converts a node allocation held for a duration into the
// facility's core-hour charge.
func (m Machine) ChargeCoreHours(nodes int, seconds float64) float64 {
	return float64(nodes) * seconds / 3600 * m.ChargeFactor
}

// KernelFactor returns the per-node time multiplier for the data-parallel
// kernels: GPU nodes divide by the GPU speedup, and all times scale by the
// machine's CPU generation factor.
func (m Machine) KernelFactor(useGPU bool) float64 {
	f := m.CPUFactor
	if useGPU && m.HasGPU && m.GPUFactor > 0 {
		f /= m.GPUFactor
	}
	return f
}

// Titan returns the OLCF Cray XK7 model: 16-core AMD nodes with one K20X
// GPU each, 30x node-hour charging, and the Lustre bandwidth implied by
// "Reading the full particle set from one snapshot on Titan takes roughly
// 10 minutes" for 20 TB (§4.1) — ~33 GB/s. Redistribution of the same data
// takes "another 10 minutes", giving the same effective aggregate network
// figure.
func Titan() Machine {
	return Machine{
		Name:                "Titan",
		Nodes:               18688,
		CoresPerNode:        16,
		ChargeFactor:        30,
		HasGPU:              true,
		GPUFactor:           50,
		CPUFactor:           1,
		IOBandwidth:         33e9,
		PerNodeIOBandwidth:  250e6,
		NetBandwidth:        33e9,
		PerNodeNetBandwidth: 14e6,
		SmallJobLimit:       2,
		SmallJobNodes:       125,
	}
}

// Moonlight returns the LANL GPU-cluster model (M2090s, one hardware
// generation behind the K20X: times are 1/0.55 of Titan's). Its queue is
// friendly to "small, long analysis jobs" (§4.1): no small-job cap.
func Moonlight() Machine {
	return Machine{
		Name:                "Moonlight",
		Nodes:               308,
		CoresPerNode:        16,
		ChargeFactor:        16,
		HasGPU:              true,
		GPUFactor:           50,
		CPUFactor:           1 / 0.55,
		IOBandwidth:         5e9,
		PerNodeIOBandwidth:  250e6,
		NetBandwidth:        5e9,
		PerNodeNetBandwidth: 14e6,
	}
}

// Rhea returns the OLCF CPU analysis-cluster model: short queue waits but
// "the lack of GPUs slowed down the center finding considerably" (§4.2).
func Rhea() Machine {
	return Machine{
		Name:                "Rhea",
		Nodes:               196,
		CoresPerNode:        16,
		ChargeFactor:        16,
		HasGPU:              false,
		GPUFactor:           1,
		CPUFactor:           1,
		IOBandwidth:         10e9,
		PerNodeIOBandwidth:  250e6,
		NetBandwidth:        10e9,
		PerNodeNetBandwidth: 14e6,
	}
}

// AnalysisCosts holds the calibrated per-kernel coefficients, expressed as
// Titan-CPU-core seconds; Machine.KernelFactor maps them onto any machine.
type AnalysisCosts struct {
	// CenterPairSeconds is the cost per particle pair of the O(n²) MBP
	// potential sum on one Titan CPU node (the unit every coefficient uses;
	// KernelFactor divides by the GPU factor when a GPU runs the kernel).
	// Anchored to Table 2: the z=0 slowest node (a ~25M-particle halo plus
	// neighbours) projects to 21,250 Titan-GPU seconds, i.e. ~3.4e-11
	// s/pair on the K20X and 50x that, 1.7e-9 s/pair, on the CPU.
	CenterPairSeconds float64
	// FOFParticleSeconds is the per-particle cost of k-d tree FOF halo
	// finding at z=0 clustering. Anchored to Table 2: 2143 s max for
	// 8192³/16384 = 32.8M particles per node -> ~6.5e-5 s/particle
	// (includes the tree build and traversal constants).
	FOFParticleSeconds float64
	// FOFGrowth scales FOF time with cosmic structure growth: time at
	// scale factor a is FOFParticleSeconds · (D(a)/D(1))^FOFGrowth per
	// particle. Table 2's Find column grows ~5x from slice 60 to 100.
	FOFGrowth float64
	// SubhaloParticleSeconds is the coefficient of the tree-based subhalo
	// finder's cost (CPU only — "our current implementation based on a
	// tree-algorithm does not take advantage of GPUs", §4.2), applied as
	// c·n^SubhaloExponent per halo of n particles. The multi-pass
	// unbinding makes the practical scaling strongly superlinear; the
	// exponent is calibrated so the downscaled run's per-node imbalance
	// matches §4.2's 8172 s vs 1457 s (a factor > 5).
	SubhaloParticleSeconds float64
	// SubhaloExponent is the per-halo size exponent (default 1.8).
	SubhaloExponent float64
	// SimStepSeconds is the wall time of one full simulation step for the
	// reference 1024³/32-node configuration (Table 4: ~775 s).
	SimStepSeconds float64
}

// DefaultCosts returns coefficients calibrated to the paper's anchors (see
// the per-field comments and EXPERIMENTS.md for the derivations).
func DefaultCosts() AnalysisCosts {
	return AnalysisCosts{
		CenterPairSeconds:      1.7e-9,
		FOFParticleSeconds:     6.5e-5,
		FOFGrowth:              2.0,
		SubhaloParticleSeconds: 1.1e-8,
		SubhaloExponent:        1.8,
		SimStepSeconds:         775,
	}
}

// CenterSeconds returns the modelled time to find the MBP centers of the
// given halos (particle counts) serially on one node of m.
func (c AnalysisCosts) CenterSeconds(m Machine, useGPU bool, haloSizes []int) float64 {
	t := 0.0
	for _, n := range haloSizes {
		t += float64(n) * float64(n) * c.CenterPairSeconds
	}
	return t * m.KernelFactor(useGPU)
}

// FOFSeconds returns the modelled halo-identification time for nLocal
// particles on one node at linear growth factor dRel = D(a)/D(1).
func (c AnalysisCosts) FOFSeconds(m Machine, nLocal int, dRel float64) float64 {
	if dRel <= 0 {
		dRel = 1
	}
	return float64(nLocal) * c.FOFParticleSeconds * math.Pow(dRel, c.FOFGrowth) * m.CPUFactor
}

// subhaloExponent returns the configured exponent, defaulting to 1.8.
func (c AnalysisCosts) subhaloExponent() float64 {
	if c.SubhaloExponent > 1 {
		return c.SubhaloExponent
	}
	return 1.8
}

// SubhaloCost returns the modelled per-halo substructure-finding cost
// c·n^exponent in Titan-CPU seconds (before machine factors).
func (c AnalysisCosts) SubhaloCost(n float64) float64 {
	if n < 2 {
		return 0
	}
	return c.SubhaloParticleSeconds * math.Pow(n, c.subhaloExponent())
}

// SubhaloSeconds returns the modelled substructure-finding time for the
// given halo sizes on one node (always CPU).
func (c AnalysisCosts) SubhaloSeconds(m Machine, haloSizes []int) float64 {
	t := 0.0
	for _, n := range haloSizes {
		t += c.SubhaloCost(float64(n))
	}
	return t * m.CPUFactor
}

// IOSeconds returns the modelled time for a nodes-wide job to read or
// write the given bytes: the job drives nodes·PerNodeIOBandwidth, capped
// by the file system's aggregate bandwidth.
func (m Machine) IOSeconds(bytes float64, nodes int) float64 {
	rate := float64(nodes) * m.PerNodeIOBandwidth
	if rate > m.IOBandwidth {
		rate = m.IOBandwidth
	}
	if rate <= 0 {
		rate = m.IOBandwidth
	}
	return bytes / rate
}

// RedistributeSeconds returns the modelled alltoall particle-exchange time
// for the given bytes over nodes participants. The effective rate is
// nodes·PerNodeNetBandwidth divided by a log2(nodes) collective penalty
// and capped by the aggregate interconnect bandwidth.
func (m Machine) RedistributeSeconds(bytes float64, nodes int) float64 {
	n := float64(nodes)
	if n < 2 {
		n = 2
	}
	rate := float64(nodes) * m.PerNodeNetBandwidth / math.Log2(n)
	if rate > m.NetBandwidth {
		rate = m.NetBandwidth
	}
	if rate <= 0 {
		rate = m.NetBandwidth
	}
	return bytes / rate
}
