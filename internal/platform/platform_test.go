package platform

import (
	"math"
	"testing"
)

func TestMachinesValidate(t *testing.T) {
	for _, m := range []Machine{Titan(), Moonlight(), Rhea()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := Titan()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error")
	}
}

// The Titan charging policy: one node-hour = 30 core hours (Table 3).
func TestTitanCharge(t *testing.T) {
	titan := Titan()
	if got := titan.ChargeCoreHours(1, 3600); math.Abs(got-30) > 1e-9 {
		t.Errorf("1 node-hour = %v core hours, want 30", got)
	}
	// Table 3's in-situ row: 722 s on 32 nodes -> ~193 core hours.
	got := titan.ChargeCoreHours(32, 722)
	if got < 190 || got > 196 {
		t.Errorf("in-situ analysis charge = %v, paper says 193", got)
	}
}

func TestKernelFactorGPU(t *testing.T) {
	titan := Titan()
	cpu := titan.KernelFactor(false)
	gpu := titan.KernelFactor(true)
	if math.Abs(cpu/gpu-50) > 1e-9 {
		t.Errorf("GPU speedup = %v, paper says ~50", cpu/gpu)
	}
	rhea := Rhea()
	if rhea.KernelFactor(true) != rhea.KernelFactor(false) {
		t.Error("Rhea has no GPUs; factors must match")
	}
}

// Moonlight is slower than Titan by 1/0.55 (§4.1).
func TestMoonlightFactor(t *testing.T) {
	ratio := Titan().KernelFactor(true) / Moonlight().KernelFactor(true)
	if math.Abs(ratio-0.55) > 1e-9 {
		t.Errorf("Titan/Moonlight = %v, want 0.55", ratio)
	}
}

// Reading 20 TB on full-machine Titan takes ~10 minutes (§4.1).
func TestTitanIOAnchor(t *testing.T) {
	titan := Titan()
	sec := titan.IOSeconds(20e12, 16384)
	if sec < 400 || sec > 900 {
		t.Errorf("20 TB read = %v s, paper says ~600", sec)
	}
	// Redistribution anchor: "another 10 minutes" at the same scale. The
	// model is calibrated to Table 4's 32-node measurements first, leaving
	// the full-machine figure within ~2x of the paper's rounded estimate.
	sec = titan.RedistributeSeconds(20e12, 16384)
	if sec < 300 || sec > 1300 {
		t.Errorf("20 TB redistribute = %v s, paper says ~600 (2x band)", sec)
	}
}

func TestIOSecondsScalesWithNodes(t *testing.T) {
	titan := Titan()
	// Small jobs scale with node count...
	one := titan.IOSeconds(1e12, 1)
	four := titan.IOSeconds(1e12, 4)
	if math.Abs(one/four-4) > 1e-9 {
		t.Errorf("I/O should scale linearly at small node counts: %v vs %v", one, four)
	}
	// ...but the aggregate Lustre cap binds at full machine: doubling a
	// full-machine job cannot go faster than the cap.
	capped := titan.IOSeconds(1e12, titan.Nodes)
	wantCap := 1e12 / titan.IOBandwidth
	if math.Abs(capped-wantCap) > 1e-9 {
		t.Errorf("full-machine I/O = %v, want cap %v", capped, wantCap)
	}
}

// Table 2 anchor: centers of a z=0 node with a 25M-particle halo project to
// ~21,250 GPU seconds on Titan.
func TestCenterSecondsTable2Anchor(t *testing.T) {
	costs := DefaultCosts()
	titan := Titan()
	sec := costs.CenterSeconds(titan, true, []int{25_000_000})
	if sec < 15000 || sec > 28000 {
		t.Errorf("25M-particle center = %v s, paper's slowest node is 21,250", sec)
	}
	// GPU/CPU factor.
	cpuSec := costs.CenterSeconds(titan, false, []int{25_000_000})
	if math.Abs(cpuSec/sec-50) > 1e-9 {
		t.Errorf("CPU/GPU = %v", cpuSec/sec)
	}
}

// The paper's 10,000x scaling example: "finding the MBP center of a halo
// with 10 million particles can take 10,000 times longer than for a halo
// with 100,000 particles" (§3.3.2).
func TestCenterSecondsQuadraticScaling(t *testing.T) {
	costs := DefaultCosts()
	titan := Titan()
	big := costs.CenterSeconds(titan, true, []int{10_000_000})
	small := costs.CenterSeconds(titan, true, []int{100_000})
	if ratio := big / small; math.Abs(ratio-10000) > 1 {
		t.Errorf("scaling ratio = %v, want 10,000", ratio)
	}
}

// Table 2 anchor: FOF at z=0 with 32.8M particles/node ~ 2000 s.
func TestFOFSecondsTable2Anchor(t *testing.T) {
	costs := DefaultCosts()
	titan := Titan()
	nLocal := 8192 * 8192 * 8192 / 16384
	sec := costs.FOFSeconds(titan, nLocal, 1.0)
	if sec < 1500 || sec > 2700 {
		t.Errorf("z=0 FOF = %v s/node, paper's range is 1859-2143", sec)
	}
	// Earlier slices are faster: Table 2 slice 60 (z=1.68) shows ~400 s.
	earlier := costs.FOFSeconds(titan, nLocal, 0.45)
	if earlier >= sec {
		t.Error("FOF should be faster at higher redshift")
	}
	if ratio := sec / earlier; ratio < 2 || ratio > 10 {
		t.Errorf("Find growth slice60->100 = %v, paper shows ~5x", ratio)
	}
}

func TestSubhaloSeconds(t *testing.T) {
	costs := DefaultCosts()
	titan := Titan()
	small := costs.SubhaloSeconds(titan, []int{10000})
	big := costs.SubhaloSeconds(titan, []int{1000000})
	if big <= small*50 {
		t.Errorf("subhalo cost should grow superlinearly: %v vs %v", small, big)
	}
	if costs.SubhaloSeconds(titan, []int{1, 0}) != 0 {
		t.Error("degenerate halos should cost nothing")
	}
}

// Table 4 anchors for the refined I/O model.
func TestIOModelTable4Anchors(t *testing.T) {
	titan := Titan()
	// 40 GB Level 1 on 32 nodes: ~5 s (Table 4 off-line write/read).
	if sec := titan.IOSeconds(40e9, 32); sec < 3 || sec > 10 {
		t.Errorf("L1 I/O on 32 nodes = %v s, paper says ~5", sec)
	}
	// 40 GB redistribution over 32 nodes: ~435 s (Table 4 off-line).
	if sec := titan.RedistributeSeconds(40e9, 32); sec < 250 || sec > 700 {
		t.Errorf("L1 redistribute on 32 nodes = %v s, paper says 435", sec)
	}
	// 5 GB Level 2 redistribution over 4 nodes must beat the off-line
	// number by more than a factor of two (§4.2 "reduces the I/O time and
	// time for redistribution of the particles by more than a factor of
	// two").
	l2 := titan.RedistributeSeconds(5e9, 4)
	l1 := titan.RedistributeSeconds(40e9, 32)
	if l2*2 > l1 {
		t.Errorf("L2 redistribute %v not well under half of L1's %v", l2, l1)
	}
}

func TestValidateAllBranches(t *testing.T) {
	cases := []func(*Machine){
		func(m *Machine) { m.Nodes = 0 },
		func(m *Machine) { m.ChargeFactor = 0 },
		func(m *Machine) { m.CPUFactor = 0 },
		func(m *Machine) { m.IOBandwidth = 0 },
		func(m *Machine) { m.NetBandwidth = 0 },
	}
	for i, mutate := range cases {
		m := Titan()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFOFSecondsDegenerateGrowth(t *testing.T) {
	costs := DefaultCosts()
	titan := Titan()
	// dRel <= 0 falls back to 1 (no growth scaling).
	if got, want := costs.FOFSeconds(titan, 1000, 0), costs.FOFSeconds(titan, 1000, 1); got != want {
		t.Errorf("dRel=0 -> %v, want %v", got, want)
	}
}

func TestSubhaloExponentDefault(t *testing.T) {
	c := AnalysisCosts{SubhaloParticleSeconds: 1}
	// Unset exponent falls back to 1.8.
	if got := c.SubhaloCost(100); got != math.Pow(100, 1.8) {
		t.Errorf("default exponent cost = %v", got)
	}
	if c.SubhaloCost(1) != 0 {
		t.Error("n<2 should cost 0")
	}
}

func TestBandwidthZeroRateFallbacks(t *testing.T) {
	m := Titan()
	m.PerNodeIOBandwidth = 0
	// Falls back to the aggregate cap.
	if sec := m.IOSeconds(1e9, 4); sec != 1e9/m.IOBandwidth {
		t.Errorf("IO fallback = %v", sec)
	}
	m.PerNodeNetBandwidth = 0
	if sec := m.RedistributeSeconds(1e9, 4); sec != 1e9/m.NetBandwidth {
		t.Errorf("net fallback = %v", sec)
	}
	// Aggregate cap binds for huge jobs.
	m2 := Titan()
	if sec := m2.RedistributeSeconds(1e12, m2.Nodes*10); sec != 1e12/m2.NetBandwidth {
		t.Errorf("net cap = %v", sec)
	}
}
