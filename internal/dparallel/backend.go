// Package dparallel provides portable data-parallel primitives in the style
// of PISTON/VTK-m (and the underlying Thrust library) that the paper's
// analysis algorithms are written against.
//
// The central idea reproduced here is that a single implementation of an
// analysis algorithm, expressed in terms of primitives such as Map, Reduce,
// Scan and Sort, can be retargeted to different execution backends without
// change. The paper compiles the same PISTON source to CUDA, OpenMP and TBB
// backends; this package offers a Serial backend, a Parallel backend that
// fans work out over a goroutine pool, and a Device backend that wraps
// another backend while modelling an accelerator with a calibrated speedup
// factor (used by the platform cost model, see internal/platform).
package dparallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Backend is an execution target for the data-parallel primitives. ForRange
// is the only primitive a backend must supply; every other operation in this
// package is built on top of it, mirroring how Thrust builds its algorithm
// library above a minimal parallel-for substrate.
type Backend interface {
	// Name identifies the backend in logs and benchmark labels.
	Name() string
	// Workers reports the degree of parallelism the backend exposes.
	Workers() int
	// ForRange invokes fn(lo, hi) over disjoint subranges covering [0, n).
	// Calls may run concurrently; fn must be safe for the index ranges it
	// is given.
	ForRange(n int, fn func(lo, hi int))
}

// Serial executes every primitive on the calling goroutine. It is the
// reference backend: all other backends must produce results identical to
// it (up to floating-point reduction order, which this package keeps
// deterministic by reducing per-chunk results in index order).
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// ForRange implements Backend.
func (Serial) ForRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, n)
}

// Parallel executes primitives across a pool of goroutines, one chunk per
// worker. The zero value uses GOMAXPROCS workers.
type Parallel struct {
	// NumWorkers is the number of concurrent chunks; if <= 0,
	// runtime.GOMAXPROCS(0) is used.
	NumWorkers int
	// MinChunk is the smallest amount of work given to a single worker.
	// Ranges shorter than MinChunk run serially. If <= 0 a default of 1024
	// is used, which keeps goroutine overhead negligible for the particle
	// workloads in this repository.
	MinChunk int
}

// Name implements Backend.
func (p Parallel) Name() string { return fmt.Sprintf("parallel(%d)", p.workers()) }

// Workers implements Backend.
func (p Parallel) Workers() int { return p.workers() }

func (p Parallel) workers() int {
	if p.NumWorkers > 0 {
		return p.NumWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (p Parallel) minChunk() int {
	if p.MinChunk > 0 {
		return p.MinChunk
	}
	return 1024
}

// ForRange implements Backend.
func (p Parallel) ForRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.workers()
	if w <= 1 || n <= p.minChunk() {
		fn(0, n)
		return
	}
	chunks := w
	if max := (n + p.minChunk() - 1) / p.minChunk(); chunks > max {
		chunks = max
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Device models an accelerator (the GPUs of Titan or Moonlight in the
// paper). Computation is delegated to Host — results are always real — but
// the backend carries a Speedup factor that the platform cost model applies
// when projecting wall-clock times onto the modelled machine. The paper
// reports a factor of ~50 between the serial CPU A* center finder and the
// PISTON GPU implementation on Titan (§4.1).
type Device struct {
	// Host performs the actual computation. If nil, Parallel{} is used.
	Host Backend
	// Speedup is the modelled acceleration over a single CPU core; it must
	// be positive to be meaningful. It does not change computed values,
	// only the time the platform model charges for them.
	Speedup float64
	// Label names the device, e.g. "K20X" or "M2090".
	Label string
}

// Name implements Backend.
func (d Device) Name() string {
	if d.Label != "" {
		return "device(" + d.Label + ")"
	}
	return "device"
}

// Workers implements Backend.
func (d Device) Workers() int { return d.host().Workers() }

func (d Device) host() Backend {
	if d.Host != nil {
		return d.Host
	}
	return Parallel{}
}

// ForRange implements Backend.
func (d Device) ForRange(n int, fn func(lo, hi int)) { d.host().ForRange(n, fn) }

// ModelSpeedup reports the speedup factor the cost model should apply for
// work executed on b. Non-device backends report 1.
func ModelSpeedup(b Backend) float64 {
	if d, ok := b.(Device); ok && d.Speedup > 0 {
		return d.Speedup
	}
	return 1
}

// Default is the backend used by package-level convenience wrappers. It is
// a Parallel backend sized to the machine.
var Default Backend = Parallel{}
