package dparallel

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// backends under test: every primitive must agree with the Serial reference.
func testBackends() []Backend {
	return []Backend{
		Serial{},
		Parallel{NumWorkers: 1},
		Parallel{NumWorkers: 4, MinChunk: 8},
		Parallel{NumWorkers: 16, MinChunk: 1},
		Device{Host: Parallel{NumWorkers: 4, MinChunk: 4}, Speedup: 50, Label: "K20X"},
	}
}

func TestBackendNames(t *testing.T) {
	if (Serial{}).Name() != "serial" {
		t.Errorf("Serial.Name() = %q", Serial{}.Name())
	}
	if got := (Parallel{NumWorkers: 3}).Name(); got != "parallel(3)" {
		t.Errorf("Parallel.Name() = %q", got)
	}
	if got := (Device{Label: "K20X"}).Name(); got != "device(K20X)" {
		t.Errorf("Device.Name() = %q", got)
	}
	if got := (Device{}).Name(); got != "device" {
		t.Errorf("Device{}.Name() = %q", got)
	}
}

func TestBackendWorkers(t *testing.T) {
	if (Serial{}).Workers() != 1 {
		t.Error("Serial should report 1 worker")
	}
	if (Parallel{NumWorkers: 7}).Workers() != 7 {
		t.Error("Parallel{7} should report 7 workers")
	}
	if (Parallel{}).Workers() < 1 {
		t.Error("default Parallel should report >= 1 worker")
	}
	if (Device{Host: Parallel{NumWorkers: 2}}).Workers() != 2 {
		t.Error("Device should delegate Workers to host")
	}
}

func TestModelSpeedup(t *testing.T) {
	if s := ModelSpeedup(Serial{}); s != 1 {
		t.Errorf("Serial speedup = %v, want 1", s)
	}
	if s := ModelSpeedup(Device{Speedup: 50}); s != 50 {
		t.Errorf("Device speedup = %v, want 50", s)
	}
	if s := ModelSpeedup(Device{}); s != 1 {
		t.Errorf("Device without speedup = %v, want 1", s)
	}
}

func TestForRangeCoversAllIndices(t *testing.T) {
	for _, b := range testBackends() {
		for _, n := range []int{0, 1, 2, 7, 100, 1025} {
			seen := make([]int32, n)
			var cov chunkCollector[[2]int]
			b.ForRange(n, func(lo, hi int) {
				cov.add([2]int{lo, hi})
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("%s n=%d: index %d covered %d times", b.Name(), n, i, c)
				}
			}
		}
	}
}

func TestMapWritesEveryElement(t *testing.T) {
	for _, b := range testBackends() {
		out := make([]float64, 999)
		Map(b, len(out), func(i int) { out[i] = float64(i * i) })
		for i, v := range out {
			if v != float64(i*i) {
				t.Fatalf("%s: out[%d] = %v", b.Name(), i, v)
			}
		}
	}
}

func TestSumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64() - 0.5
	}
	want := Sum(Serial{}, len(vals), func(i int) float64 { return vals[i] })
	for _, b := range testBackends() {
		got := Sum(b, len(vals), func(i int) float64 { return vals[i] })
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: sum = %v, want %v", b.Name(), got, want)
		}
	}
}

func TestReduceEmptyReturnsIdentity(t *testing.T) {
	got := Reduce(Parallel{}, 0, 42, func(int) float64 { return 0 }, func(a, b float64) float64 { return a + b })
	if got != 42 {
		t.Errorf("empty reduce = %v, want identity 42", got)
	}
}

func TestMinIndex(t *testing.T) {
	vals := []float64{5, 3, 8, 3, 9, 1, 1, 7}
	for _, b := range testBackends() {
		idx, v := MinIndex(b, len(vals), func(i int) float64 { return vals[i] })
		if idx != 5 || v != 1 {
			t.Errorf("%s: MinIndex = (%d, %v), want (5, 1)", b.Name(), idx, v)
		}
	}
}

func TestMinIndexEmpty(t *testing.T) {
	idx, v := MinIndex(Parallel{}, 0, func(int) float64 { return 0 })
	if idx != -1 || !math.IsInf(v, 1) {
		t.Errorf("empty MinIndex = (%d, %v), want (-1, +Inf)", idx, v)
	}
}

func TestMinIndexTieBreaksToSmallestIndex(t *testing.T) {
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = 1
	}
	vals[100] = 0
	vals[2000] = 0
	for _, b := range testBackends() {
		idx, _ := MinIndex(b, len(vals), func(i int) float64 { return vals[i] })
		if idx != 100 {
			t.Errorf("%s: tie broke to %d, want 100", b.Name(), idx)
		}
	}
}

func TestMaxIndex(t *testing.T) {
	vals := []float64{5, 3, 8, 3, 9, 1, 9, 7}
	idx, v := MaxIndex(Parallel{NumWorkers: 4, MinChunk: 2}, len(vals), func(i int) float64 { return vals[i] })
	if idx != 4 || v != 9 {
		t.Errorf("MaxIndex = (%d, %v), want (4, 9)", idx, v)
	}
	idx, v = MaxIndex(Serial{}, 0, func(int) float64 { return 0 })
	if idx != -1 || !math.IsInf(v, -1) {
		t.Errorf("empty MaxIndex = (%d, %v)", idx, v)
	}
}

func TestCount(t *testing.T) {
	for _, b := range testBackends() {
		got := Count(b, 1000, func(i int) bool { return i%3 == 0 })
		if got != 334 {
			t.Errorf("%s: count = %d, want 334", b.Name(), got)
		}
	}
}

func TestInclusiveScan(t *testing.T) {
	n := 777
	want := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += float64(i % 13)
		want[i] = acc
	}
	for _, b := range testBackends() {
		out := make([]float64, n)
		InclusiveScan(b, n, func(i int) float64 { return float64(i % 13) }, out)
		for i := range out {
			if math.Abs(out[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: scan[%d] = %v, want %v", b.Name(), i, out[i], want[i])
			}
		}
	}
}

func TestExclusiveScanInt(t *testing.T) {
	out := make([]int, 5)
	total := ExclusiveScanInt(5, func(i int) int { return i + 1 }, out)
	if total != 15 {
		t.Errorf("total = %d, want 15", total)
	}
	want := []int{0, 1, 3, 6, 10}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("offsets = %v, want %v", out, want)
	}
}

func TestFilter(t *testing.T) {
	for _, b := range testBackends() {
		got := Filter(b, 20, func(i int) bool { return i%5 == 0 })
		want := []int{0, 5, 10, 15}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: filter = %v, want %v", b.Name(), got, want)
		}
	}
	if got := Filter(Serial{}, 0, func(int) bool { return true }); len(got) != 0 {
		t.Errorf("empty filter = %v", got)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	b := Parallel{NumWorkers: 4, MinChunk: 2}
	src := []string{"a", "b", "c", "d", "e"}
	idx := []int{4, 2, 0, 3, 1}
	gathered := make([]string, 5)
	Gather(b, idx, src, gathered)
	if !reflect.DeepEqual(gathered, []string{"e", "c", "a", "d", "b"}) {
		t.Fatalf("gather = %v", gathered)
	}
	back := make([]string, 5)
	Scatter(b, idx, gathered, back)
	if !reflect.DeepEqual(back, src) {
		t.Fatalf("scatter round trip = %v, want %v", back, src)
	}
}

func TestSortByKeyOrdersPermutation(t *testing.T) {
	keys := []float64{3.5, -1, 2, 2, 0}
	perm := make([]int, len(keys))
	Iota(perm)
	SortByKey(perm, keys)
	want := []int{1, 4, 2, 3, 0} // stable: equal keys keep index order
	if !reflect.DeepEqual(perm, want) {
		t.Errorf("perm = %v, want %v", perm, want)
	}
}

func TestIota(t *testing.T) {
	out := make([]int, 4)
	Iota(out)
	if !reflect.DeepEqual(out, []int{0, 1, 2, 3}) {
		t.Errorf("iota = %v", out)
	}
}

// Property: for arbitrary inputs, parallel Sum/MinIndex/Filter agree with
// the serial reference.
func TestPropertyParallelMatchesSerial(t *testing.T) {
	par := Parallel{NumWorkers: 8, MinChunk: 3}
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			// Keep magnitudes modest so floating-point reassociation across
			// chunk boundaries cannot change sums beyond the tolerance.
			vals[i] = math.Mod(vals[i], 1e6)
		}
		n := len(vals)
		get := func(i int) float64 { return vals[i] }
		s1 := Sum(Serial{}, n, get)
		s2 := Sum(par, n, get)
		if math.Abs(s1-s2) > 1e-6*(1+math.Abs(s1)) {
			return false
		}
		i1, _ := MinIndex(Serial{}, n, get)
		i2, _ := MinIndex(par, n, get)
		if i1 != i2 {
			return false
		}
		f1 := Filter(Serial{}, n, func(i int) bool { return vals[i] > 0 })
		f2 := Filter(par, n, func(i int) bool { return vals[i] > 0 })
		return reflect.DeepEqual(f1, f2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: InclusiveScan's final element equals Sum.
func TestPropertyScanTotalEqualsSum(t *testing.T) {
	par := Parallel{NumWorkers: 5, MinChunk: 2}
	f := func(raw []uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		get := func(i int) float64 { return float64(raw[i]) }
		out := make([]float64, n)
		InclusiveScan(par, n, get, out)
		return math.Abs(out[n-1]-Sum(Serial{}, n, get)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SortByKey yields non-decreasing keys and a valid permutation.
func TestPropertySortByKeyIsPermutation(t *testing.T) {
	f := func(raw []int16) bool {
		keys := make([]float64, len(raw))
		for i, v := range raw {
			keys[i] = float64(v)
		}
		perm := make([]int, len(keys))
		Iota(perm)
		SortByKey(perm, keys)
		if !sort.SliceIsSorted(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] }) {
			// SliceIsSorted with strict less can reject equal runs; check manually.
			for i := 1; i < len(perm); i++ {
				if keys[perm[i]] < keys[perm[i-1]] {
					return false
				}
			}
		}
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(seen) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ParallelSortByKey must produce exactly SortByKey's (stable) result.
func TestParallelSortByKeyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 100, 2048, 10000} {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(rng.Intn(50)) // many duplicates: stability matters
		}
		want := make([]int, n)
		Iota(want)
		SortByKey(want, keys)
		got := make([]int, n)
		Iota(got)
		ParallelSortByKey(Parallel{NumWorkers: 5}, got, keys)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel sort differs from serial", n)
		}
	}
}

func TestPropertyParallelSortStable(t *testing.T) {
	f := func(raw []uint8) bool {
		keys := make([]float64, len(raw))
		for i, v := range raw {
			keys[i] = float64(v % 8)
		}
		a := make([]int, len(keys))
		Iota(a)
		SortByKey(a, keys)
		b := make([]int, len(keys))
		Iota(b)
		ParallelSortByKey(Parallel{NumWorkers: 3}, b, keys)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
