package dparallel

import (
	"math"
	"sort"
	"sync"
)

// Map applies fn to every index in [0, n) on the given backend. It is the
// fundamental transform primitive: fn typically writes element i of an
// output slice from element i of one or more input slices.
func Map(b Backend, n int, fn func(i int)) {
	b.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// MapChunks applies fn to contiguous chunks, letting callers hoist per-chunk
// state (scratch buffers, partial sums) out of the inner loop.
func MapChunks(b Backend, n int, fn func(lo, hi int)) {
	b.ForRange(n, fn)
}

// Reduce combines value(i) for i in [0, n) with the associative function
// combine, starting from identity. Per-chunk partials are combined in chunk
// order so that results are deterministic for a given backend chunking.
func Reduce(b Backend, n int, identity float64, value func(i int) float64, combine func(a, b float64) float64) float64 {
	type part struct {
		lo  int
		val float64
	}
	var mu chunkCollector[part]
	b.ForRange(n, func(lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, value(i))
		}
		mu.add(part{lo, acc})
	})
	parts := mu.sorted(func(a, b part) bool { return a.lo < b.lo })
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p.val)
	}
	return acc
}

// Sum reduces value(i) by addition.
func Sum(b Backend, n int, value func(i int) float64) float64 {
	return Reduce(b, n, 0, value, func(a, v float64) float64 { return a + v })
}

// MinIndex returns the index i in [0, n) minimizing value(i), together with
// the minimum value. Ties resolve to the smallest index so the result is
// independent of backend chunking. It returns (-1, +Inf) when n <= 0.
//
// MinIndex is the primitive at the heart of the paper's data-parallel MBP
// center finder: compute the potential of every particle in parallel, then
// take the argmin.
func MinIndex(b Backend, n int, value func(i int) float64) (int, float64) {
	if n <= 0 {
		return -1, math.Inf(1)
	}
	type part struct {
		idx int
		val float64
	}
	var mu chunkCollector[part]
	b.ForRange(n, func(lo, hi int) {
		best := lo
		bestVal := value(lo)
		for i := lo + 1; i < hi; i++ {
			if v := value(i); v < bestVal {
				best, bestVal = i, v
			}
		}
		mu.add(part{best, bestVal})
	})
	parts := mu.sorted(func(a, b part) bool { return a.idx < b.idx })
	best, bestVal := parts[0].idx, parts[0].val
	for _, p := range parts[1:] {
		if p.val < bestVal {
			best, bestVal = p.idx, p.val
		}
	}
	return best, bestVal
}

// MaxIndex returns the index maximizing value(i) and the maximum value,
// with ties resolving to the smallest index; (-1, -Inf) when n <= 0.
func MaxIndex(b Backend, n int, value func(i int) float64) (int, float64) {
	idx, v := MinIndex(b, n, func(i int) float64 { return -value(i) })
	if idx < 0 {
		return -1, math.Inf(-1)
	}
	return idx, -v
}

// Count returns the number of indices for which pred is true.
func Count(b Backend, n int, pred func(i int) bool) int {
	type part struct {
		lo int
		c  int
	}
	var mu chunkCollector[part]
	b.ForRange(n, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		mu.add(part{lo, c})
	})
	total := 0
	for _, p := range mu.items {
		total += p.c
	}
	return total
}

// InclusiveScan writes into out the running combination of value(0..i)
// (an inclusive prefix scan). out must have length >= n. The scan is
// computed with the classic two-pass chunked algorithm: per-chunk partials,
// serial combine of partials, then a parallel downsweep.
func InclusiveScan(b Backend, n int, value func(i int) float64, out []float64) {
	if n <= 0 {
		return
	}
	// Pass 1: per-chunk inclusive scans plus chunk totals.
	type part struct {
		lo, hi int
		total  float64
	}
	var mu chunkCollector[part]
	b.ForRange(n, func(lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += value(i)
			out[i] = acc
		}
		mu.add(part{lo, hi, acc})
	})
	parts := mu.sorted(func(a, b part) bool { return a.lo < b.lo })
	// Pass 2: offset each chunk by the sum of preceding chunk totals.
	offset := 0.0
	for _, p := range parts {
		if offset != 0 {
			lo, hi, off := p.lo, p.hi, offset
			b.ForRange(hi-lo, func(l, h int) {
				for i := lo + l; i < lo+h; i++ {
					out[i] += off
				}
			})
		}
		offset += p.total
	}
}

// ExclusiveScanInt computes an exclusive integer prefix sum of value(i)
// into out (out[0]=0) and returns the grand total. It is the stream
// compaction workhorse used by Filter.
func ExclusiveScanInt(n int, value func(i int) int, out []int) int {
	acc := 0
	for i := 0; i < n; i++ {
		out[i] = acc
		acc += value(i)
	}
	return acc
}

// Filter returns the indices in [0, n) satisfying pred, in ascending order
// (a stream compaction). The flag pass runs on the backend; the compaction
// pass is a serial scan, which is O(n) and never dominates.
func Filter(b Backend, n int, pred func(i int) bool) []int {
	if n <= 0 {
		return nil
	}
	flags := make([]int, n)
	Map(b, n, func(i int) {
		if pred(i) {
			flags[i] = 1
		}
	})
	offsets := make([]int, n)
	total := ExclusiveScanInt(n, func(i int) int { return flags[i] }, offsets)
	out := make([]int, total)
	Map(b, n, func(i int) {
		if flags[i] == 1 {
			out[offsets[i]] = i
		}
	})
	return out
}

// Gather copies src[idx[i]] into dst[i] for each i.
func Gather[T any](b Backend, idx []int, src, dst []T) {
	Map(b, len(idx), func(i int) { dst[i] = src[idx[i]] })
}

// Scatter copies src[i] into dst[idx[i]] for each i. Indices must be
// distinct or the result is unspecified.
func Scatter[T any](b Backend, idx []int, src, dst []T) {
	Map(b, len(idx), func(i int) { dst[idx[i]] = src[i] })
}

// SortByKey sorts the permutation perm (which must initially contain each
// index of keys exactly once, in any order) so that keys[perm[i]] is
// non-decreasing. The sort is stable with respect to the initial order of
// perm. Thrust exposes the same operation as sort_by_key; the paper's
// subhalo finder iterates particles in density-sorted order via exactly
// this primitive.
func SortByKey(perm []int, keys []float64) {
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
}

// Iota fills out with 0..len(out)-1.
func Iota(out []int) {
	for i := range out {
		out[i] = i
	}
}

// chunkCollector accumulates per-chunk partial results under a mutex.
type chunkCollector[T any] struct {
	mu    sync.Mutex
	items []T
}

func (c *chunkCollector[T]) add(v T) {
	c.mu.Lock()
	c.items = append(c.items, v)
	c.mu.Unlock()
}

func (c *chunkCollector[T]) sorted(less func(a, b T) bool) []T {
	sort.Slice(c.items, func(i, j int) bool { return less(c.items[i], c.items[j]) })
	return c.items
}

// ParallelSortByKey is SortByKey with chunked parallel sorting and a
// stable pairwise merge cascade — the shape of Thrust's merge sort, which
// PISTON's algorithms lean on heavily. Results are identical to SortByKey
// (stable ascending order by key).
func ParallelSortByKey(b Backend, perm []int, keys []float64) {
	n := len(perm)
	w := b.Workers()
	if w <= 1 || n < 2048 {
		SortByKey(perm, keys)
		return
	}
	// Chunk boundaries.
	chunks := w
	bounds := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		bounds[c] = c * n / chunks
	}
	// Sort chunks concurrently.
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		go func(lo, hi int) {
			defer wg.Done()
			SortByKey(perm[lo:hi], keys)
		}(bounds[c], bounds[c+1])
	}
	wg.Wait()
	// Merge cascade: pairs of adjacent runs merge concurrently until one
	// run remains. Stability holds because the left run's equal keys win.
	buf := make([]int, n)
	src, dst := perm, buf
	runs := bounds
	for len(runs) > 2 {
		var next []int
		var mg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			lo, mid, hi := runs[i], runs[i+1], runs[i+2]
			next = append(next, lo)
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(src, dst, keys, lo, mid, hi)
			}(lo, mid, hi)
		}
		// A trailing unpaired run is copied through.
		if len(runs)%2 == 0 {
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			next = append(next, lo)
			mg.Add(1)
			go func(lo, hi int) {
				defer mg.Done()
				copy(dst[lo:hi], src[lo:hi])
			}(lo, hi)
		}
		mg.Wait()
		next = append(next, n)
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &perm[0] {
		copy(perm, src)
	}
}

// mergeRuns stably merges src[lo:mid] and src[mid:hi] into dst[lo:hi].
func mergeRuns(src, dst []int, keys []float64, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if keys[src[i]] <= keys[src[j]] {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
		k++
	}
	for i < mid {
		dst[k] = src[i]
		i++
		k++
	}
	for j < hi {
		dst[k] = src[j]
		j++
		k++
	}
}
