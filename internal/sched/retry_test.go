package sched

import (
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/fs"
)

// alwaysFail returns an injector that kills every job attempt at half its
// duration.
func alwaysFail() *fault.Injector {
	return fault.MustNew(fault.Profile{Seed: 1, JobFailureProb: 1, JobFailureFracMin: 0.5, JobFailureFracMax: 0.5})
}

func TestJobFailsAndIsResubmitted(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	// Fail the first attempt only: probability 1 is keyed per (name,
	// attempt), so use a profile that fails attempt 0 but we cap retries
	// high enough for eventual success to be impossible — instead verify
	// via a 100%-failure injector that retries happen and give-up fires.
	c.Faults = alwaysFail()
	c.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 10, BackoffFactor: 2}
	var gaveUp bool
	j := &Job{Name: "doomed", Nodes: 2, Duration: 100, OnGiveUp: func(*Job) { gaveUp = true }}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !gaveUp || !j.Failed || j.Completed {
		t.Errorf("job = %+v, gaveUp = %v", j, gaveUp)
	}
	if c.Attempts != 3 || c.FailedAttempts != 3 || c.Resubmits != 2 || c.LostJobs != 1 {
		t.Errorf("counters: attempts %d failed %d resubmits %d lost %d",
			c.Attempts, c.FailedAttempts, c.Resubmits, c.LostJobs)
	}
	if len(j.History) != 3 {
		t.Fatalf("history = %v", j.History)
	}
	// Attempt 1: 0-50 (fails at 50% of 100 s). Backoff 10 → resubmit at 60,
	// fails at 110. Backoff 20 → resubmit at 130, fails at 180.
	want := []Attempt{{0, 50}, {60, 110}, {130, 180}}
	for i, a := range j.History {
		if a != want[i] {
			t.Errorf("attempt %d = %+v, want %+v", i, a, want[i])
		}
	}
	if c.TimeLost != 150 || c.LostNodeSeconds != 300 {
		t.Errorf("time lost %v node-seconds %v", c.TimeLost, c.LostNodeSeconds)
	}
	if c.FreeNodes() != 10 {
		t.Errorf("failed job leaked nodes: free = %d", c.FreeNodes())
	}
}

func TestJobRecoversOnRetry(t *testing.T) {
	// A moderate failure rate with enough attempts: most jobs complete
	// eventually, and completed jobs carry clean per-run state.
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	c.Faults = fault.MustNew(fault.Profile{Seed: 3, JobFailureProb: 0.5})
	c.Retry = RetryPolicy{MaxAttempts: 10, Backoff: 5}
	var jobs []*Job
	for i := 0; i < 20; i++ {
		j := &Job{Name: fmt.Sprintf("j%d", i), Nodes: 1, Duration: 50}
		jobs = append(jobs, j)
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	completed := 0
	for _, j := range jobs {
		if j.Failed {
			continue
		}
		completed++
		if !j.Completed {
			t.Fatalf("job %s neither completed nor failed", j.Name)
		}
		if ran := j.EndTime - j.StartTime; ran < j.Duration-1e-9 || ran > j.Duration+1e-9 {
			t.Errorf("job %s final attempt ran %v, want %v", j.Name, ran, j.Duration)
		}
		if len(j.History) != j.Attempt {
			t.Errorf("job %s attempt %d but history %d", j.Name, j.Attempt, len(j.History))
		}
	}
	if completed == 0 {
		t.Error("no job ever completed under 50% failure with 10 attempts")
	}
	if c.FailedAttempts == 0 {
		t.Error("expected some failed attempts at 50% rate")
	}
	if c.FreeNodes() != 10 {
		t.Errorf("free = %d", c.FreeNodes())
	}
}

// Satellite: Submit must reset per-run state so a resubmitted job does not
// carry its previous attempt's Started/Completed/times.
func TestSubmitResetsStaleState(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	j := &Job{Name: "again", Nodes: 1, Duration: 10}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !j.Completed || j.EndTime != 10 {
		t.Fatalf("first run: %+v", j)
	}
	// Resubmit the same job object at t=10.
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.Started || j.Completed || j.StartTime != 0 || j.EndTime != 0 {
		t.Errorf("stale state survived Submit: %+v", j)
	}
	sim.Run()
	if !j.Completed || j.StartTime != 10 || j.EndTime != 20 {
		t.Errorf("second run: %+v", j)
	}
}

func TestNodeDrainWithholdsCapacity(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine()) // 10 nodes
	c.ApplyDrains([]fault.Drain{{Window: fault.Window{Start: 0, End: 100}, Nodes: 8}})
	j := &Job{Name: "j", Nodes: 4, Duration: 10}
	sim.At(5, func() {
		if err := c.Submit(j); err != nil {
			t.Error(err)
		}
	})
	sim.Run()
	// Only 2 nodes free during the drain; the 4-node job must wait for the
	// window to end at t=100.
	if j.StartTime != 100 {
		t.Errorf("job started %v, want 100 (after drain)", j.StartTime)
	}
	if c.FreeNodes() != 10 {
		t.Errorf("free = %d after drain ended", c.FreeNodes())
	}
}

func TestListenerOutageDropsPolls(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "lustre")
	c, _ := NewCluster(&sim, smallMachine())
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 10,
		Faults:       fault.MustNew(fault.Profile{ListenerOutages: []fault.Window{{Start: 15, End: 45}}}),
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{Name: path, Nodes: 1, Duration: 1}
		},
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	// File lands at t=12, during the outage approach; polls at 20, 30, 40
	// are lost, so the file is only picked up at t=50.
	sim.At(12, func() { storage.Write("out/a", 1, 0, nil, nil) })
	sim.At(100, func() { l.Stop() })
	sim.Run()
	if l.MissedPolls != 3 {
		t.Errorf("missed polls = %d, want 3", l.MissedPolls)
	}
	if l.Submitted != 1 {
		t.Fatalf("submitted = %d", l.Submitted)
	}
	if start := c.Finished()[0].SubmitTime; start != 50 {
		t.Errorf("job submitted at %v, want 50 (first poll after outage)", start)
	}
}

// Satellite: a Submit failure must not mark the file seen — the next poll
// retries instead of silently dropping the analysis forever.
func TestSweepRetriesAfterSubmitFailure(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "lustre")
	c, _ := NewCluster(&sim, smallMachine()) // 10 nodes
	requested := 11                          // too big: Submit fails
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 10,
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{Name: path, Nodes: requested, Duration: 5}
		},
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	storage.Write("out/a", 1, 0, nil, nil)
	// After two failing polls the "template" is fixed and submission works.
	sim.At(25, func() { requested = 2 })
	sim.At(60, func() { l.Stop() })
	sim.Run()
	if l.Submitted != 1 {
		t.Errorf("submitted = %d; Submit failure must be retried on later polls", l.Submitted)
	}
	if len(c.Finished()) != 1 {
		t.Fatalf("finished = %d", len(c.Finished()))
	}
	if at := c.Finished()[0].SubmitTime; at != 30 {
		t.Errorf("job submitted at %v, want 30 (first poll after the fix)", at)
	}
}

func TestRetryBackoffJitterIsDeterministic(t *testing.T) {
	run := func() []Attempt {
		var sim des.Sim
		c, _ := NewCluster(&sim, smallMachine())
		c.Faults = fault.MustNew(fault.Profile{Seed: 9, JobFailureProb: 1, JobFailureFracMin: 0.5, JobFailureFracMax: 0.5})
		c.Retry = RetryPolicy{MaxAttempts: 4, Backoff: 10, BackoffFactor: 2, JitterFrac: 0.5}
		j := &Job{Name: "jittery", Nodes: 1, Duration: 100}
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return j.History
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("history = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered schedule not reproducible: %v vs %v", a, b)
		}
	}
	// Jitter must actually stretch the backoff beyond the deterministic
	// floor for at least one retry (probability of all-zero draws is nil).
	stretched := false
	floor := []float64{0, 10, 20, 40} // pure exponential backoffs
	for i := 1; i < len(a); i++ {
		gap := a[i].Start - a[i-1].End
		if gap > floor[i]+1e-9 {
			stretched = true
		}
		if gap < floor[i] {
			t.Errorf("retry %d backoff %v below floor %v", i, gap, floor[i])
		}
	}
	if !stretched {
		t.Error("jitter never exceeded the deterministic backoff floor")
	}
}
