package sched

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/supervise"
)

// alwaysStall returns an injector that hangs every attempt of every job at
// half its duration.
func alwaysStall() *fault.Injector {
	return fault.MustNew(fault.Profile{Seed: 1, JobStallProb: 1, JobStallFracMin: 0.5, JobStallFracMax: 0.5})
}

// supervisedCluster builds a 10-node cluster with default retry and
// default gray-failure supervision attached.
func supervisedCluster(sim *des.Sim) *Cluster {
	c, _ := NewCluster(sim, smallMachine())
	c.Retry = DefaultRetry()
	c.Supervise = supervise.New(sim, supervise.DefaultPolicy())
	return c
}

func TestStalledJobRecoveredByHedge(t *testing.T) {
	var sim des.Sim
	c := supervisedCluster(&sim)
	// Stall draws are keyed by job name, and a backup's name (~h1 suffix)
	// draws independently: pick a seed where the primary stalls but its
	// backup runs clean.
	var seed int64
	for s := int64(1); s < 200; s++ {
		in := fault.MustNew(fault.Profile{Seed: s, JobStallProb: 0.5})
		_, p := in.JobStall("j", 0)
		_, b := in.JobStall("j~h1", 0)
		if p && !b {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed stalls the primary but not the backup")
	}
	c.Faults = fault.MustNew(fault.Profile{Seed: seed, JobStallProb: 0.5})
	var completions int
	j := &Job{Name: "j", Nodes: 2, Duration: 1000, OnComplete: func(*Job) { completions++ }}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !j.Completed {
		t.Fatalf("stalled job never recovered: %+v", j)
	}
	if completions != 1 {
		t.Errorf("OnComplete fired %d times; hedged duplicates must not double-count", completions)
	}
	if c.StalledAttempts != 1 || c.HedgesLaunched != 1 || c.HedgeWins != 1 {
		t.Errorf("stalls %d hedges %d wins %d, want 1/1/1",
			c.StalledAttempts, c.HedgesLaunched, c.HedgeWins)
	}
	if c.StragglerNodeSeconds <= 0 {
		t.Error("cancelled stalled primary's node-seconds not accounted")
	}
	if c.FreeNodes() != 10 {
		t.Errorf("free = %d; the stalled primary leaked its nodes", c.FreeNodes())
	}
	// The hedge decision log exists and reproduces.
	var hedges int
	for _, d := range c.Supervise.Decisions() {
		if d.Event == "hedge" {
			hedges++
		}
	}
	if hedges != 1 {
		t.Errorf("decision log hedges = %d", hedges)
	}
}

func TestHedgingBudgetExhaustedDeclaresLost(t *testing.T) {
	var sim des.Sim
	c := supervisedCluster(&sim)
	c.Faults = alwaysStall() // every attempt, primary and backups, stalls
	var gaveUp bool
	j := &Job{Name: "doomed", Nodes: 2, Duration: 1000, OnGiveUp: func(*Job) { gaveUp = true }}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !gaveUp || !j.Failed || j.Completed {
		t.Fatalf("job = %+v, gaveUp = %v", j, gaveUp)
	}
	// Primary + MaxHedges backups all stalled; every one was reclaimed.
	if c.HedgesLaunched != supervise.DefaultPolicy().MaxHedges {
		t.Errorf("hedges = %d, want the full budget %d", c.HedgesLaunched, supervise.DefaultPolicy().MaxHedges)
	}
	if c.StalledAttempts != 1+c.HedgesLaunched {
		t.Errorf("stalls = %d", c.StalledAttempts)
	}
	if c.LostJobs != 1 {
		t.Errorf("lost = %d", c.LostJobs)
	}
	if c.FreeNodes() != 10 {
		t.Errorf("free = %d; stalled attempts leaked nodes", c.FreeNodes())
	}
	if c.HedgeWins != 0 {
		t.Errorf("wins = %d", c.HedgeWins)
	}
}

func TestPrimaryBeatsItsBackup(t *testing.T) {
	var sim des.Sim
	c := supervisedCluster(&sim)
	// A 3x slowdown on a job whose deadline is 4x+120 never trips the
	// deadline... so use the straggler path: seed six fast peers first.
	for i := 0; i < 6; i++ {
		j := &Job{Name: fmt.Sprintf("peer%d", i), Nodes: 1, Duration: 100}
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	// Degraded window slows jobs starting inside it by 5x: the primary is
	// hedged as a straggler, but the backup starts inside the same window
	// (also 5x) with a later start — the primary finishes first.
	c.Faults = fault.MustNew(fault.Profile{
		DegradedNodes: []fault.Degraded{{Window: fault.Window{Start: 600, End: 4000}, Factor: 5}},
	})
	var completions int
	j := &Job{Name: "slow", Nodes: 2, Duration: 100, OnComplete: func(*Job) { completions++ }}
	sim.At(700, func() {
		if err := c.Submit(j); err != nil {
			t.Error(err)
		}
	})
	sim.Run()
	if !j.Completed || completions != 1 {
		t.Fatalf("job = %+v completions = %d", j, completions)
	}
	if j.EndTime != 700+500 {
		t.Errorf("primary finished at %v, want 1200 (5x slowdown)", j.EndTime)
	}
	if c.HedgesLaunched == 0 {
		t.Error("straggling primary was never hedged")
	}
	if c.HedgeWins != 0 {
		t.Error("backup recorded a win although the primary finished first")
	}
	// Exactly one completion of "slow" in the finished list.
	n := 0
	for _, f := range c.Finished() {
		if f == j {
			n++
		}
	}
	if n != 1 {
		t.Errorf("job appears %d times in finished", n)
	}
}

func TestSlowdownStretchesEffDuration(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	c.Faults = fault.MustNew(fault.Profile{
		Seed: 5, JobSlowdownProb: 1, JobSlowdownFactorMin: 2, JobSlowdownFactorMax: 2,
		DegradedNodes: []fault.Degraded{{Window: fault.Window{Start: 0, End: 50}, Factor: 3}},
	})
	j := &Job{Name: "j", Nodes: 1, Duration: 100}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// 2x per-job slowdown compounded with the 3x degraded window = 6x.
	if j.EffDuration != 600 || j.EndTime != 600 {
		t.Errorf("eff %v end %v, want 600", j.EffDuration, j.EndTime)
	}
}

func TestHedgeDecisionLogReproducible(t *testing.T) {
	run := func() []supervise.Decision {
		var sim des.Sim
		c := supervisedCluster(&sim)
		c.Faults = fault.MustNew(fault.Profile{Seed: 21, JobStallProb: 0.4, JobSlowdownProb: 0.3})
		for i := 0; i < 12; i++ {
			j := &Job{Name: fmt.Sprintf("j%d", i), Nodes: 1, Duration: 200}
			if err := c.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run()
		return c.Supervise.Decisions()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("decision logs differ across identical runs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no decisions under a stalling profile")
	}
}

// Satellite regression: attempt counts far past 40 must not overflow the
// exponential backoff into huge or negative delays.
func TestRetryBackoffCappedAtMaxDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2000, Backoff: 30, BackoffFactor: 2, MaxDelay: 600}
	for _, attempt := range []int{1, 5, 40, 41, 100, 1999} {
		d := p.delay(nil, "j", attempt)
		if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("attempt %d: delay %v", attempt, d)
		}
		if d > 600 {
			t.Errorf("attempt %d: delay %v above MaxDelay", attempt, d)
		}
	}
	// Unset MaxDelay falls back to the default cap, not to unbounded
	// doubling (2^1000 overflows float64).
	p.MaxDelay = 0
	if d := p.delay(nil, "j", 1000); d != DefaultMaxDelay {
		t.Errorf("attempt 1000 with default cap: delay %v, want %v", d, float64(DefaultMaxDelay))
	}
	// The cap does not disturb small attempt counts.
	if d := p.delay(nil, "j", 3); d != 120 {
		t.Errorf("attempt 3: delay %v, want 120", d)
	}
}

func TestListenerBreakerBacksOffSubmitFailures(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "lustre")
	c, _ := NewCluster(&sim, smallMachine())
	// Every submission attempt is refused: the breaker must open after 3
	// consecutive refusals and skip instead of hot-looping.
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 10,
		Faults:       fault.MustNew(fault.Profile{Seed: 2, SubmitFailProb: 1}),
		Breaker:      supervise.NewBreaker(sim.Now),
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{Name: path, Nodes: 1, Duration: 1}
		},
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	storage.Write("out/a", 1, 0, nil, nil)
	sim.At(300, func() { l.Stop() })
	sim.Run()
	if l.Submitted != 0 {
		t.Fatalf("submitted = %d under certain refusal", l.Submitted)
	}
	if l.Breaker.Opens == 0 {
		t.Error("breaker never opened under repeated refusals")
	}
	if l.BreakerSkips == 0 {
		t.Error("open breaker never skipped a submission")
	}
	// 29 polls; without the breaker every one would attempt a submission.
	if l.SubmitFaults >= l.Polls {
		t.Errorf("submit attempts %d not reduced below polls %d", l.SubmitFaults, l.Polls)
	}
}

func TestListenerRecoversWhenRefusalsStop(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "lustre")
	c, _ := NewCluster(&sim, smallMachine())
	// Refusals are certain for the first 3 tries of the path, then clear:
	// SubmitFail is keyed by (path, try), so pick a seed where try >= 3
	// succeeds. With probability 1 every try fails; model recovery by
	// swapping the injector at t=150 instead.
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 10,
		Faults:       fault.MustNew(fault.Profile{Seed: 2, SubmitFailProb: 1}),
		Breaker:      supervise.NewBreaker(sim.Now),
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{Name: path, Nodes: 1, Duration: 1}
		},
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	storage.Write("out/a", 1, 0, nil, nil)
	sim.At(150, func() { l.Faults = nil }) // front-end recovers
	sim.At(400, func() { l.Stop() })
	sim.Run()
	if l.Submitted != 1 {
		t.Fatalf("submitted = %d after recovery", l.Submitted)
	}
	if len(c.Finished()) != 1 {
		t.Errorf("finished = %d", len(c.Finished()))
	}
	// The half-open probe discovered the recovery: the breaker is closed.
	if l.Breaker.State() != supervise.BreakerClosed {
		t.Errorf("breaker %v after recovery", l.Breaker.State())
	}
}

func TestUnsupervisedClusterUnchangedByNilSupervisor(t *testing.T) {
	// Supervision off: the event sequence must match the pre-supervision
	// model exactly (EffDuration == Duration, no hedges, no decisions).
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	c.Faults = fault.MustNew(fault.Profile{Seed: 3, JobFailureProb: 0.5})
	c.Retry = RetryPolicy{MaxAttempts: 10, Backoff: 5}
	for i := 0; i < 10; i++ {
		j := &Job{Name: fmt.Sprintf("j%d", i), Nodes: 1, Duration: 50}
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if c.HedgesLaunched != 0 || c.HedgeWins != 0 || c.StalledAttempts != 0 || c.StragglerNodeSeconds != 0 {
		t.Errorf("gray counters nonzero without gray faults: %+v", c)
	}
	for _, j := range c.Finished() {
		if j.EffDuration != j.Duration {
			t.Errorf("job %s eff %v != duration %v without slowdowns", j.Name, j.EffDuration, j.Duration)
		}
	}
}
