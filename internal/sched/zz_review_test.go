package sched

import (
	"testing"

	"repro/internal/des"
	"repro/internal/platform"
	"repro/internal/supervise"
)

// Review repro: backup fails mid-run and sits in retry backoff; primary
// completes before the backoff expires. cancelJob sees the backup's stale
// Started flag and double-frees its nodes; the unguarded resubmit then
// resurrects the cancelled backup and projects a second completion onto
// the already-completed primary.
func TestReviewHedgeBackoffCancel(t *testing.T) {
	var sim des.Sim
	m := platform.Machine{
		Name: "m", Nodes: 10, CoresPerNode: 16, ChargeFactor: 30,
		CPUFactor: 1, IOBandwidth: 1e9, NetBandwidth: 1e9,
	}
	c, err := NewCluster(&sim, m)
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = RetryPolicy{MaxAttempts: 4, Backoff: 30}
	c.Supervise = supervise.New(&sim, supervise.DefaultPolicy())

	completions := 0
	p := &Job{Name: "p", Nodes: 4, Duration: 30,
		OnComplete: func(*Job) { completions++ }}
	if err := c.Submit(p); err != nil {
		t.Fatal(err)
	}
	sim.At(10, func() { c.suspect(p, supervise.ReasonStraggler) }) // launch hedge b
	sim.At(20, func() {                                            // backup dies mid-run -> backoff resubmit queued
		if p.hedge == nil || !p.hedge.Started {
			t.Fatalf("backup not racing at t=20: %+v", p.hedge)
		}
		c.fail(p.hedge)
	})
	sim.Run()

	t.Logf("freeNodes=%d (machine has %d)", c.FreeNodes(), m.Nodes)
	t.Logf("completions of p: %d, finished list: %d", completions, len(c.Finished()))
	if c.FreeNodes() > m.Nodes {
		t.Errorf("freeNodes %d exceeds machine nodes %d (double-free)", c.FreeNodes(), m.Nodes)
	}
	if completions > 1 {
		t.Errorf("primary OnComplete fired %d times", completions)
	}
	if len(c.Finished()) > 1 {
		t.Errorf("finished list has %d entries for one job", len(c.Finished()))
	}
}
