// Observability hooks for the scheduler: job spans and queue metrics.
//
// Every helper here is a no-op when Cluster.Obs / Listener.Obs is nil —
// the guard is a single pointer check, so the uninstrumented path stays
// allocation-free (the <2% no-op overhead budget in EXPERIMENTS.md).
// Span timestamps come exclusively from the cluster's DES clock via the
// observer's injected Clock; see the obs package determinism contract.
package sched

import "strconv"

// Histogram bucket bounds, fixed so shard merges stay associative and
// encode order deterministic. Queue waits span seconds (co-scheduled
// small jobs) to days (full-machine off-line allocations, §4.2).
var (
	// QueueWaitBounds buckets job queue waits in seconds.
	QueueWaitBounds = []float64{1, 10, 60, 300, 900, 3600, 14400, 86400, 604800}
	// RunTimeBounds buckets effective job run times in seconds.
	RunTimeBounds = []float64{10, 30, 60, 120, 300, 900, 3600, 14400}
)

// obsSubmit counts a submission (first runs, retries, and hedges alike).
func (c *Cluster) obsSubmit(j *Job) {
	if c.Obs == nil {
		return
	}
	c.Obs.Metrics().Counter("sched.jobs_submitted").Inc()
	c.Obs.Metrics().Gauge("sched.queue_depth").Set(float64(len(c.pending)))
}

// obsStart opens the attempt's span (named name#attempt, charged at the
// job's node count on this cluster's machine) and records the queue wait.
func (c *Cluster) obsStart(j *Job) {
	if c.Obs == nil {
		return
	}
	j.span = c.Obs.Begin("job", jobKey(j)).Charge(c.Machine.Name, j.Nodes)
	m := c.Obs.Metrics()
	m.Counter("sched.attempts").Inc()
	m.Histogram("sched.queue_wait_seconds", QueueWaitBounds).Observe(j.QueueWait())
}

// obsEnd closes the attempt's span with an outcome annotation and, for
// completed attempts, feeds the run-time histogram.
func (c *Cluster) obsEnd(j *Job, outcome string) {
	if c.Obs == nil || j.span == nil {
		return
	}
	j.span.Arg("outcome", outcome)
	if j.Attempt > 0 {
		j.span.Arg("attempt", strconv.Itoa(j.Attempt))
	}
	j.span.Done()
	j.span = nil
	m := c.Obs.Metrics()
	m.Counter("sched.attempts_" + outcome).Inc()
	if outcome == "ok" {
		m.Histogram("sched.run_seconds", RunTimeBounds).Observe(j.EffDuration)
	}
}

// obsCount bumps a plain cluster counter (hedges, losses).
func (c *Cluster) obsCount(name string) {
	if c.Obs == nil {
		return
	}
	c.Obs.Metrics().Counter(name).Inc()
}

// obsPoll records listener poll outcomes.
func (l *Listener) obsPoll(missed bool) {
	if l.Obs == nil {
		return
	}
	if missed {
		l.Obs.Metrics().Counter("listener.missed_polls").Inc()
	} else {
		l.Obs.Metrics().Counter("listener.polls").Inc()
	}
}

// obsCount bumps a plain listener counter (submits, refusals, skips).
func (l *Listener) obsCount(name string) {
	if l.Obs == nil {
		return
	}
	l.Obs.Metrics().Counter(name).Inc()
}
