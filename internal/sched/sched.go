// Package sched models batch scheduling on the paper's machines: job
// queues with node-count accounting, facility queue policies (Titan's
// small-job limit), extra queue-wait models for full-machine allocations,
// and the Bellerophon-derived listener that implements co-scheduling by
// submitting analysis jobs as output files appear (§3.2).
package sched

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fs"
	"repro/internal/platform"
)

// Job is one batch submission. Duration is known up front because the
// workflow engine computes phase times from the platform cost models; the
// scheduler's contribution is *when* the job runs.
type Job struct {
	// Name for reports.
	Name string
	// Nodes requested.
	Nodes int
	// Duration of execution once started, in seconds.
	Duration float64
	// OnStart and OnComplete fire at the job's start and end (either may
	// be nil). OnComplete commonly writes files or submits follow-ups.
	OnStart    func(j *Job)
	OnComplete func(j *Job)

	// Filled by the scheduler.
	SubmitTime, EligibleTime, StartTime, EndTime float64
	Started, Completed                           bool
}

// QueueWait returns how long the job waited beyond its submission
// (including modelled facility wait).
func (j *Job) QueueWait() float64 { return j.StartTime - j.SubmitTime }

// Cluster schedules jobs onto one machine.
type Cluster struct {
	// Sim is the shared virtual clock.
	Sim *des.Sim
	// Machine provides node counts and queue policy.
	Machine platform.Machine
	// ExtraQueueWait models facility queue delay beyond resource
	// contention as a function of the job (e.g. "days to a week" for a
	// full-size off-line allocation, §4.2). nil means none.
	ExtraQueueWait func(j *Job) float64

	freeNodes    int
	pending      []*Job
	runningSmall int
	finished     []*Job
	// MaxPendingSeen records the deepest queue observed — the paper's
	// co-scheduling "pile-up in the analysis stack, where many analysis
	// jobs are queued while others run" (§3.2).
	MaxPendingSeen int
}

// NewCluster creates a cluster with all nodes free.
func NewCluster(sim *des.Sim, m platform.Machine) (*Cluster, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{Sim: sim, Machine: m, freeNodes: m.Nodes}, nil
}

// FreeNodes reports currently idle nodes.
func (c *Cluster) FreeNodes() int { return c.freeNodes }

// Finished returns the completed jobs in completion order.
func (c *Cluster) Finished() []*Job { return c.finished }

// Pending reports queued-but-unstarted jobs.
func (c *Cluster) Pending() int { return len(c.pending) }

// Submit queues a job. The job becomes eligible after the modelled extra
// queue wait, then starts when nodes are free and policy admits it.
func (c *Cluster) Submit(j *Job) error {
	if j.Nodes <= 0 || j.Nodes > c.Machine.Nodes {
		return fmt.Errorf("sched: job %q requests %d nodes on %d-node %s", j.Name, j.Nodes, c.Machine.Nodes, c.Machine.Name)
	}
	if j.Duration < 0 {
		return fmt.Errorf("sched: job %q has negative duration", j.Name)
	}
	j.SubmitTime = c.Sim.Now()
	wait := 0.0
	if c.ExtraQueueWait != nil {
		wait = c.ExtraQueueWait(j)
	}
	j.EligibleTime = j.SubmitTime + wait
	c.pending = append(c.pending, j)
	if len(c.pending) > c.MaxPendingSeen {
		c.MaxPendingSeen = len(c.pending)
	}
	c.Sim.At(j.EligibleTime, c.trySchedule)
	return nil
}

// isSmall reports whether the job falls under the facility's small-job
// policy.
func (c *Cluster) isSmall(j *Job) bool {
	return c.Machine.SmallJobLimit > 0 && j.Nodes < c.Machine.SmallJobNodes
}

// trySchedule starts every eligible job that fits, scanning the queue in
// submission order (FIFO with skip — a small job blocked by policy does
// not block a later large job).
func (c *Cluster) trySchedule() {
	now := c.Sim.Now()
	remaining := c.pending[:0]
	for _, j := range c.pending {
		if j.EligibleTime > now || j.Nodes > c.freeNodes || (c.isSmall(j) && c.runningSmall >= c.Machine.SmallJobLimit) {
			remaining = append(remaining, j)
			continue
		}
		c.start(j)
	}
	c.pending = remaining
}

func (c *Cluster) start(j *Job) {
	j.Started = true
	j.StartTime = c.Sim.Now()
	c.freeNodes -= j.Nodes
	if c.isSmall(j) {
		c.runningSmall++
	}
	if j.OnStart != nil {
		j.OnStart(j)
	}
	c.Sim.After(j.Duration, func() {
		j.Completed = true
		j.EndTime = c.Sim.Now()
		c.freeNodes += j.Nodes
		if c.isSmall(j) {
			c.runningSmall--
		}
		c.finished = append(c.finished, j)
		if j.OnComplete != nil {
			j.OnComplete(j)
		}
		c.trySchedule()
	})
}

// Listener is the co-scheduling daemon: it polls a storage tier for new
// output files and submits an analysis job per file, templated by
// MakeJob. "While the listener and the main job run asynchronously, the
// rate at which the listener checks for new output files should be chosen
// to be much higher than the rate at which the main code generates new
// output files" (§3.2).
type Listener struct {
	// Sim is the virtual clock; FS the watched tier; Cluster the analysis
	// cluster jobs are submitted to.
	Sim     *des.Sim
	FS      *fs.System
	Cluster *Cluster
	// Prefix selects the watched files.
	Prefix string
	// PollInterval is the check cadence in seconds.
	PollInterval float64
	// MakeJob templates an analysis job for a newly seen file ("the
	// listener generates a new batch script and input parameters, based on
	// the timestep of the data and template files"). Returning nil skips
	// the file.
	MakeJob func(path string, f *fs.File) *Job

	seen      map[string]bool
	stopped   bool
	Submitted int
	Polls     int
}

// Start begins polling. The listener runs until Stop (the backgrounded
// listener "allows the job to end when the main application has
// completed").
func (l *Listener) Start() error {
	if l.PollInterval <= 0 {
		return fmt.Errorf("sched: listener poll interval %g must be positive", l.PollInterval)
	}
	if l.MakeJob == nil {
		return fmt.Errorf("sched: listener needs a MakeJob template")
	}
	l.seen = map[string]bool{}
	l.Sim.After(l.PollInterval, l.poll)
	return nil
}

// Stop halts polling after the current tick.
func (l *Listener) Stop() { l.stopped = true }

// FinalSweep performs one last check, catching files that landed "at the
// very end of the main application's execution time" (§3.2) — the paper's
// additional post-job listener instance.
func (l *Listener) FinalSweep() { l.sweep() }

func (l *Listener) poll() {
	if l.stopped {
		return
	}
	l.Polls++
	l.sweep()
	l.Sim.After(l.PollInterval, l.poll)
}

func (l *Listener) sweep() {
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	for _, path := range l.FS.List(l.Prefix) {
		if l.seen[path] {
			continue
		}
		l.seen[path] = true
		f, err := l.FS.Stat(path)
		if err != nil {
			continue
		}
		job := l.MakeJob(path, f)
		if job == nil {
			continue
		}
		if err := l.Cluster.Submit(job); err == nil {
			l.Submitted++
		}
	}
}
