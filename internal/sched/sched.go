// Package sched models batch scheduling on the paper's machines: job
// queues with node-count accounting, facility queue policies (Titan's
// small-job limit), extra queue-wait models for full-machine allocations,
// and the Bellerophon-derived listener that implements co-scheduling by
// submitting analysis jobs as output files appear (§3.2).
//
// With a fault.Injector attached, jobs can die mid-run (node failure, OOM,
// wall-limit kill) and are resubmitted under a RetryPolicy with
// exponential backoff; node-drain windows withhold capacity; the listener
// loses polls during outage windows. All failure behaviour is strictly
// additive: a nil injector reproduces the failure-free model exactly.
package sched

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/supervise"
)

// Attempt records one execution attempt of a job that was started and
// later died (successful attempts are described by the job's own
// StartTime/EndTime).
type Attempt struct {
	// Start and End bound the attempt; End is when the failure struck.
	Start, End float64
}

// Job is one batch submission. Duration is known up front because the
// workflow engine computes phase times from the platform cost models; the
// scheduler's contribution is *when* the job runs.
type Job struct {
	// Name for reports.
	Name string
	// Nodes requested.
	Nodes int
	// Duration of execution once started, in seconds.
	Duration float64
	// OnStart and OnComplete fire at the job's start and end (either may
	// be nil). OnComplete commonly writes files or submits follow-ups.
	OnStart    func(j *Job)
	OnComplete func(j *Job)
	// OnGiveUp fires when the job fails and the retry policy is exhausted
	// (may be nil). OnComplete never fires for such a job.
	OnGiveUp func(j *Job)

	// Filled by the scheduler.
	SubmitTime, EligibleTime, StartTime, EndTime float64
	Started, Completed                           bool

	// Attempt is the current attempt index (0-based); History records the
	// failed attempts that preceded it. Failed marks a job whose retries
	// are exhausted.
	Attempt int
	History []Attempt
	Failed  bool

	// EffDuration is the attempt's actual run time after gray-failure
	// slowdown factors (equal to Duration in a healthy run).
	EffDuration float64

	// Hedging state (see gray.go): hedge is the live backup attempt racing
	// this job; hedgeOf points a backup at its primary; hedges counts the
	// backups launched for this job; cancelled invalidates an attempt whose
	// race was lost (its queued events are inert).
	hedge     *Job
	hedgeOf   *Job
	hedges    int
	cancelled bool

	// span is the current attempt's trace span (nil when the cluster is
	// uninstrumented); see obs.go.
	span *obs.Span
}

// QueueWait returns how long the job waited beyond its submission
// (including modelled facility wait).
func (j *Job) QueueWait() float64 { return j.StartTime - j.SubmitTime }

// RetryPolicy governs resubmission of jobs that die mid-run.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts allowed (first run
	// included). 0 or 1 means no retries.
	MaxAttempts int
	// Backoff is the delay in seconds before the first resubmission;
	// each further retry multiplies it by BackoffFactor (default 2).
	Backoff       float64
	BackoffFactor float64
	// JitterFrac adds up to this fraction of the backoff, drawn from the
	// fault injector's seeded RNG so runs stay reproducible.
	JitterFrac float64
	// MaxDelay caps the exponential backoff in seconds; 0 means the
	// DefaultMaxDelay cap. Without a cap, attempt counts past ~40 overflow
	// the doubling into absurd (eventually +Inf) delays.
	MaxDelay float64
}

// DefaultMaxDelay is the backoff cap applied when RetryPolicy.MaxDelay is
// unset: one simulated hour.
const DefaultMaxDelay = 3600

// DefaultRetry is the policy used by the workflow engine when faults are
// enabled: up to 4 attempts, 30 s initial backoff doubling per retry, 25%
// jitter.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 30, BackoffFactor: 2, JitterFrac: 0.25}
}

// delay computes the backoff before resubmitting attempt (1-based retry
// index: attempt 1 is the first resubmission).
func (p RetryPolicy) delay(inj *fault.Injector, name string, attempt int) float64 {
	d := p.Backoff
	factor := p.BackoffFactor
	if factor <= 0 {
		factor = 2
	}
	max := p.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	// Stop multiplying once past the cap: 2^1000 overflows float64 long
	// before the cap clamps it.
	for i := 1; i < attempt && d < max; i++ {
		d *= factor
	}
	if d > max {
		d = max
	}
	if p.JitterFrac > 0 {
		d += d * p.JitterFrac * inj.RetryJitter(name, attempt)
	}
	return d
}

// Cluster schedules jobs onto one machine.
type Cluster struct {
	// Sim is the shared virtual clock.
	Sim *des.Sim
	// Machine provides node counts and queue policy.
	Machine platform.Machine
	// ExtraQueueWait models facility queue delay beyond resource
	// contention as a function of the job (e.g. "days to a week" for a
	// full-size off-line allocation, §4.2). nil means none.
	ExtraQueueWait func(j *Job) float64
	// Faults optionally injects mid-run job failures; nil means the
	// failure-free model. Retry governs resubmission of failed jobs.
	Faults *fault.Injector
	Retry  RetryPolicy
	// Supervise attaches gray-failure supervision (heartbeats, deadlines,
	// stragglers, hedged re-execution — see gray.go); nil disables it and
	// reproduces the unsupervised event sequence exactly.
	Supervise *supervise.Supervisor
	// Obs records job spans and queue metrics against the DES clock; nil
	// disables instrumentation entirely (see obs.go).
	Obs *obs.Observer

	freeNodes    int
	pending      []*Job
	runningSmall int
	finished     []*Job
	// MaxPendingSeen records the deepest queue observed — the paper's
	// co-scheduling "pile-up in the analysis stack, where many analysis
	// jobs are queued while others run" (§3.2).
	MaxPendingSeen int

	// Failure counters (all zero under a nil injector).
	Attempts        int     // job attempts started
	FailedAttempts  int     // attempts that died mid-run
	Resubmits       int     // failed attempts that were resubmitted
	LostJobs        int     // jobs whose retries were exhausted
	TimeLost        float64 // execution seconds discarded by failed attempts
	LostNodeSeconds float64 // node-seconds held by failed attempts (for charging)

	// Gray-failure counters (all zero without gray faults/supervision).
	StalledAttempts      int     // attempts that hung mid-run holding their nodes
	HedgesLaunched       int     // backup attempts launched for suspect jobs
	HedgeWins            int     // races the backup finished first
	StragglerNodeSeconds float64 // node-seconds reclaimed by cancelling race losers
}

// NewCluster creates a cluster with all nodes free.
func NewCluster(sim *des.Sim, m platform.Machine) (*Cluster, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{Sim: sim, Machine: m, freeNodes: m.Nodes}, nil
}

// FreeNodes reports currently idle nodes (negative while a drain window
// overlaps nodes that running jobs still occupy).
func (c *Cluster) FreeNodes() int { return c.freeNodes }

// Finished returns the completed jobs in completion order.
func (c *Cluster) Finished() []*Job { return c.finished }

// Pending reports queued-but-unstarted jobs.
func (c *Cluster) Pending() int { return len(c.pending) }

// ApplyDrains schedules the injector's node-drain windows: at each window
// start the drained nodes are withheld from new job starts, and at the end
// they return to service. Jobs already running keep their nodes.
func (c *Cluster) ApplyDrains(drains []fault.Drain) {
	for _, d := range drains {
		n := d.Nodes
		if n <= 0 {
			continue
		}
		if n > c.Machine.Nodes {
			n = c.Machine.Nodes
		}
		nodes := n
		c.Sim.At(d.Start, func() { c.freeNodes -= nodes })
		c.Sim.At(d.End, func() {
			c.freeNodes += nodes
			c.trySchedule()
		})
	}
}

// Submit queues a job. The job becomes eligible after the modelled extra
// queue wait, then starts when nodes are free and policy admits it.
// Resubmitting a job (after a failure) resets its per-run state.
func (c *Cluster) Submit(j *Job) error {
	if j.Nodes <= 0 || j.Nodes > c.Machine.Nodes {
		return fmt.Errorf("sched: job %q requests %d nodes on %d-node %s", j.Name, j.Nodes, c.Machine.Nodes, c.Machine.Name)
	}
	if j.Duration < 0 {
		return fmt.Errorf("sched: job %q has negative duration", j.Name)
	}
	// Clear any stale state from a previous attempt. A cancelled race
	// loser stays inert: its queued events were orphaned by the attempt
	// bump in cancelJob, so clearing the flag here is safe.
	j.Started, j.Completed, j.cancelled = false, false, false
	j.StartTime, j.EndTime = 0, 0
	j.SubmitTime = c.Sim.Now()
	wait := 0.0
	if c.ExtraQueueWait != nil {
		wait = c.ExtraQueueWait(j)
	}
	j.EligibleTime = j.SubmitTime + wait
	c.pending = append(c.pending, j)
	if len(c.pending) > c.MaxPendingSeen {
		c.MaxPendingSeen = len(c.pending)
	}
	c.obsSubmit(j)
	c.Sim.At(j.EligibleTime, c.trySchedule)
	return nil
}

// isSmall reports whether the job falls under the facility's small-job
// policy.
func (c *Cluster) isSmall(j *Job) bool {
	return c.Machine.SmallJobLimit > 0 && j.Nodes < c.Machine.SmallJobNodes
}

// trySchedule starts every eligible job that fits, scanning the queue in
// submission order (FIFO with skip — a small job blocked by policy does
// not block a later large job).
func (c *Cluster) trySchedule() {
	now := c.Sim.Now()
	remaining := c.pending[:0]
	for _, j := range c.pending {
		if j.EligibleTime > now || j.Nodes > c.freeNodes || (c.isSmall(j) && c.runningSmall >= c.Machine.SmallJobLimit) {
			remaining = append(remaining, j)
			continue
		}
		c.start(j)
	}
	c.pending = remaining
}

func (c *Cluster) start(j *Job) {
	j.Started = true
	j.StartTime = c.Sim.Now()
	c.freeNodes -= j.Nodes
	if c.isSmall(j) {
		c.runningSmall++
	}
	c.Attempts++
	c.obsStart(j)
	if j.OnStart != nil {
		j.OnStart(j)
	}
	// Gray failures stretch the attempt: a per-attempt slowdown draw
	// compounds with the machine's degraded-window factor at start time.
	eff := j.Duration * c.Faults.JobSlowdown(j.Name, j.Attempt) * c.Faults.DegradeFactorAt(j.StartTime)
	j.EffDuration = eff
	attempt := j.Attempt // queued events die if the attempt is superseded
	stallFrac, stalled := c.Faults.JobStall(j.Name, j.Attempt)
	if frac, fails := c.Faults.JobAttempt(j.Name, j.Attempt); fails && (!stalled || frac < stallFrac) {
		c.superviseStart(j, eff*frac)
		c.Sim.After(eff*frac, func() {
			if !j.cancelled && j.Attempt == attempt {
				c.fail(j)
			}
		})
		return
	}
	if stalled {
		// The attempt hangs: it holds its nodes, stops beating its heart at
		// the stall point, and never completes. Only supervision (heartbeat
		// watchdog → hedge or declare lost) can recover it.
		c.StalledAttempts++
		c.superviseStart(j, eff*stallFrac)
		return
	}
	c.superviseStart(j, eff)
	c.Sim.After(eff, func() {
		if !j.cancelled && j.Attempt == attempt {
			c.complete(j)
		}
	})
}

func (c *Cluster) complete(j *Job) {
	c.superviseDone(j)
	c.obsEnd(j, "ok")
	j.Completed = true
	j.EndTime = c.Sim.Now()
	c.freeNodes += j.Nodes
	if c.isSmall(j) {
		c.runningSmall--
	}
	if p := j.hedgeOf; p != nil {
		// A backup finished first: cancel the losing primary and project
		// the completion onto it, so downstream code sees exactly one
		// completion of the original job (hedged duplicates never
		// double-count).
		c.hedgeWin(j, p)
		return
	}
	if j.hedge != nil {
		// The primary beat its backup: cancel the loser.
		c.cancelJob(j.hedge, "primary finished first")
		j.hedge = nil
	}
	c.finished = append(c.finished, j)
	if j.OnComplete != nil {
		j.OnComplete(j)
	}
	c.trySchedule()
}

// fail ends a mid-run attempt: nodes free, the attempt is recorded, and
// the job is either resubmitted after backoff or marked permanently
// failed.
func (c *Cluster) fail(j *Job) {
	now := c.Sim.Now()
	c.superviseForget(j)
	c.obsEnd(j, "failed")
	c.freeNodes += j.Nodes
	if c.isSmall(j) {
		c.runningSmall--
	}
	// The attempt is over and its nodes are back: clear Started so a later
	// cancel (say, the primary finishing while this backup sits in backoff)
	// cannot free them a second time.
	j.Started = false
	j.History = append(j.History, Attempt{Start: j.StartTime, End: now})
	c.FailedAttempts++
	c.TimeLost += now - j.StartTime
	c.LostNodeSeconds += float64(j.Nodes) * (now - j.StartTime)
	j.Attempt++
	if j.hedge != nil {
		// The primary died while a live backup races on: the backup is the
		// resubmission — don't queue another copy of the work.
		c.Supervise.Note(jobKey(j), "primary-died", "live backup continues")
		c.trySchedule()
		return
	}
	if j.Attempt < c.Retry.MaxAttempts {
		c.Resubmits++
		c.obsCount("sched.resubmits")
		delay := c.Retry.delay(c.Faults, j.Name, j.Attempt)
		attempt := j.Attempt // a cancel during backoff orphans the resubmit
		c.Sim.After(delay, func() {
			if !j.cancelled && j.Attempt == attempt {
				_ = c.Submit(j)
			}
		})
	} else {
		j.Failed = true
		c.LostJobs++
		c.obsCount("sched.jobs_lost")
		if p := j.hedgeOf; p != nil {
			// A backup died with its retries exhausted: escalate back to
			// the (still-suspect) primary so a stalled primary doesn't
			// deadlock the race.
			p.hedge = nil
			c.escalate(p, supervise.ReasonBackupFailed)
		} else if j.OnGiveUp != nil {
			j.OnGiveUp(j)
		}
	}
	c.trySchedule()
}

// Listener is the co-scheduling daemon: it polls a storage tier for new
// output files and submits an analysis job per file, templated by
// MakeJob. "While the listener and the main job run asynchronously, the
// rate at which the listener checks for new output files should be chosen
// to be much higher than the rate at which the main code generates new
// output files" (§3.2).
type Listener struct {
	// Sim is the virtual clock; FS the watched tier; Cluster the analysis
	// cluster jobs are submitted to.
	Sim     *des.Sim
	FS      *fs.System
	Cluster *Cluster
	// Prefix selects the watched files.
	Prefix string
	// PollInterval is the check cadence in seconds.
	PollInterval float64
	// MakeJob templates an analysis job for a newly seen file ("the
	// listener generates a new batch script and input parameters, based on
	// the timestep of the data and template files"). Returning nil skips
	// the file.
	MakeJob func(path string, f *fs.File) *Job
	// Faults optionally injects listener outage windows; polls inside a
	// window are lost (counted in MissedPolls). With SubmitFailProb set it
	// also injects transient submission refusals (an overloaded batch
	// front-end), which the Breaker turns into backoff.
	Faults *fault.Injector
	// Breaker optionally circuit-breaks the submit path: repeated refusals
	// open it (submissions skipped until the cooldown), a half-open probe
	// rediscovers a recovered front-end. nil means no breaking.
	Breaker *supervise.Breaker
	// Obs records poll/submit counters; nil disables instrumentation.
	Obs *obs.Observer

	seen        map[string]bool
	submitTries map[string]int
	stopped     bool
	Submitted   int
	Polls       int
	MissedPolls int
	// SubmitFaults counts injected transient submit refusals; BreakerSkips
	// counts submissions not attempted because the breaker was open.
	SubmitFaults int
	BreakerSkips int
}

// Start begins polling. The listener runs until Stop (the backgrounded
// listener "allows the job to end when the main application has
// completed").
func (l *Listener) Start() error {
	if l.PollInterval <= 0 {
		return fmt.Errorf("sched: listener poll interval %g must be positive", l.PollInterval)
	}
	if l.MakeJob == nil {
		return fmt.Errorf("sched: listener needs a MakeJob template")
	}
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	l.Sim.After(l.PollInterval, l.poll)
	return nil
}

// Stop halts polling after the current tick.
func (l *Listener) Stop() { l.stopped = true }

// MarkSeen records a path as already submitted, so polling skips it. The
// campaign resume path uses this to pre-load journaled state: files whose
// analysis completed in a previous incarnation must not be re-analyzed,
// while surviving files *without* a completion record are left unmarked and
// get requeued on the first sweep.
func (l *Listener) MarkSeen(path string) {
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	l.seen[path] = true
}

// FinalSweep performs one last check, catching files that landed "at the
// very end of the main application's execution time" (§3.2) — the paper's
// additional post-job listener instance. It runs even if the listener was
// inside an outage window (the facility restarts it for the final pass).
func (l *Listener) FinalSweep() { l.sweep() }

// Unseen counts watched files not yet submitted for analysis.
func (l *Listener) Unseen() int {
	n := 0
	for _, path := range l.FS.List(l.Prefix) {
		if !l.seen[path] {
			n++
		}
	}
	return n
}

// Drain is the supervised final sweep: it re-sweeps every delay virtual
// seconds until all visible files have been submitted or maxSweeps is
// exhausted, so a transient submit refusal — or a breaker cooling down —
// at the end of the run delays the last analyses instead of losing them.
// When the first sweep submits everything (the failure-free case) no
// further event is scheduled, leaving the fault-free clock untouched.
func (l *Listener) Drain(delay float64, maxSweeps int) {
	l.sweep()
	if maxSweeps <= 1 || l.Unseen() == 0 {
		return
	}
	l.Sim.After(delay, func() { l.Drain(delay, maxSweeps-1) })
}

func (l *Listener) poll() {
	if l.stopped {
		return
	}
	l.Polls++
	if l.Faults.ListenerDown(l.Sim.Now()) {
		l.MissedPolls++
		l.obsPoll(true)
	} else {
		l.obsPoll(false)
		l.sweep()
	}
	l.Sim.After(l.PollInterval, l.poll)
}

// sweep submits an analysis job for every newly visible file. A path is
// only marked seen once its job was actually submitted (or MakeJob
// explicitly skipped it) — a Stat or Submit failure leaves the file
// unmarked so the next poll retries it instead of dropping the analysis
// silently.
func (l *Listener) sweep() {
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	for _, path := range l.FS.List(l.Prefix) {
		if l.seen[path] {
			continue
		}
		if !l.Breaker.Allow() {
			l.BreakerSkips++
			l.obsCount("listener.breaker_skips")
			continue // the front-end is sick; back off instead of hot-looping
		}
		f, err := l.FS.Stat(path)
		if err != nil {
			continue // retried next poll
		}
		if l.submitTries == nil {
			l.submitTries = map[string]int{}
		}
		try := l.submitTries[path]
		l.submitTries[path] = try + 1
		if l.Faults.SubmitFail(path, try) {
			l.SubmitFaults++
			l.obsCount("listener.submit_faults")
			l.Breaker.Failure()
			continue // transient refusal; retried next poll
		}
		job := l.MakeJob(path, f)
		if job == nil {
			l.seen[path] = true // explicit skip
			continue
		}
		if err := l.Cluster.Submit(job); err != nil {
			l.Breaker.Failure()
			continue // retried next poll
		}
		l.Breaker.Success()
		l.seen[path] = true
		l.Submitted++
		l.obsCount("listener.submitted")
	}
}
