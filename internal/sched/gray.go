// Gray-failure supervision for the cluster: heartbeat/deadline/straggler
// watching of running attempts and hedged re-execution of suspects.
//
// A suspect primary gets a backup attempt submitted alongside it; the two
// race, the first finisher wins, and the loser is cancelled with its
// node-seconds accounted. The backup carries a distinct name (primary~hN)
// so its fault draws are independent, and completion is always projected
// onto the primary Job object — downstream code (listeners, campaign
// hooks) sees exactly one completion of the original job, which is why
// hedged duplicates can never double-count results.
package sched

import (
	"fmt"
	"math"

	"repro/internal/supervise"
)

// jobKey is the supervisor task key for a job's current attempt.
func jobKey(j *Job) string {
	return fmt.Sprintf("%s#%d", j.Name, j.Attempt)
}

// superviseStart watches a just-started attempt. beatHorizon is the
// virtual time progress stops (the stall or failure point; the effective
// end for healthy attempts — beats end with the job, and Done disarms the
// watch first anyway). The heartbeat is a pure function on the interval
// grid: the watchdog polls it once per miss window instead of the job
// scheduling one event per beat, keeping supervision overhead sub-percent.
func (c *Cluster) superviseStart(j *Job, beatDuration float64) {
	sv := c.Supervise
	if sv == nil {
		return
	}
	iv := sv.Policy().HeartbeatInterval
	start := j.StartTime
	horizon := start + beatDuration
	beat := func() float64 {
		now := c.Sim.Now()
		if now > horizon {
			now = horizon
		}
		if now <= start {
			return start
		}
		return start + math.Floor((now-start)/iv)*iv
	}
	sv.Watch(jobKey(j), j.Duration, beat, func(r supervise.Reason) { c.suspect(j, r) })
}

func (c *Cluster) superviseDone(j *Job) {
	c.Supervise.Done(jobKey(j))
}

func (c *Cluster) superviseForget(j *Job) {
	c.Supervise.Forget(jobKey(j))
}

// suspect handles a supervision verdict on the job's current attempt.
func (c *Cluster) suspect(j *Job, r supervise.Reason) {
	if j.Completed || j.Failed || j.cancelled {
		return
	}
	if p := j.hedgeOf; p != nil {
		// The backup itself went gray: cancel it and escalate the primary
		// (another hedge, or declare the job lost).
		c.cancelJob(j, "backup went "+string(r))
		p.hedge = nil
		c.escalate(p, supervise.ReasonBackupFailed)
		return
	}
	if j.hedge != nil {
		return // already hedged; let the race play out
	}
	c.escalate(j, r)
}

// escalate responds to a suspect primary: hedge a backup attempt while the
// budget lasts, then declare the job lost. A cancelled (preempted) primary
// still escalates — its backup is now the only live attempt, and when that
// backup dies the job needs another hedge or a loss declaration.
func (c *Cluster) escalate(j *Job, r supervise.Reason) {
	if j.Completed || j.Failed {
		return
	}
	max := c.Supervise.Policy().MaxHedges
	if j.hedges < max {
		c.launchHedge(j, r)
	} else {
		c.declareLost(j, r)
	}
}

// launchHedge submits a backup attempt racing the suspect primary. The
// backup shares the primary's OnStart (so re-emitted side effects follow
// the same per-attempt gating as retries) but not its OnComplete — the
// race winner's completion is projected onto the primary exactly once.
func (c *Cluster) launchHedge(p *Job, r supervise.Reason) {
	p.hedges++
	c.HedgesLaunched++
	c.obsCount("sched.hedges_launched")
	b := &Job{
		Name:     fmt.Sprintf("%s~h%d", p.Name, p.hedges),
		Nodes:    p.Nodes,
		Duration: p.Duration,
		OnStart:  p.OnStart,
		hedgeOf:  p,
	}
	p.hedge = b
	c.Supervise.Note(jobKey(p), "hedge", fmt.Sprintf("%s: backup %s launched", r, b.Name))
	_ = c.Submit(b)
	if b.Nodes > c.freeNodes || (c.isSmall(b) && c.runningSmall >= c.Machine.SmallJobLimit) {
		// The cluster cannot run the suspect and its backup side by side
		// (node shortage or the facility's small-job policy): racing would
		// deadlock the backup behind the very straggler it replaces, so
		// preempt the suspect and let the backup inherit its slot.
		c.cancelJob(p, "preempted: no room to race backup "+b.Name)
		c.trySchedule()
	}
}

// hedgeWin projects a winning backup's completion onto its primary.
func (c *Cluster) hedgeWin(b, p *Job) {
	now := c.Sim.Now()
	c.HedgeWins++
	c.obsCount("sched.hedge_wins")
	c.Supervise.Note(jobKey(p), "hedge-win", fmt.Sprintf("backup %s finished first", b.Name))
	c.cancelJob(p, "lost the race to its backup")
	p.hedge = nil
	p.Completed = true
	p.EndTime = now
	c.finished = append(c.finished, p)
	if p.OnComplete != nil {
		p.OnComplete(p)
	}
	c.trySchedule()
}

// declareLost gives up on a job no recovery path can save (hedging budget
// exhausted): its nodes are reclaimed and OnGiveUp fires so the workflow
// layer can degrade the step to the off-line path.
func (c *Cluster) declareLost(j *Job, r supervise.Reason) {
	c.Supervise.Note(jobKey(j), "lost", string(r)+": hedging budget exhausted")
	c.cancelJob(j, string(r))
	j.Failed = true
	c.LostJobs++
	c.obsCount("sched.jobs_lost")
	if j.OnGiveUp != nil {
		j.OnGiveUp(j)
	}
	c.trySchedule()
}

// cancelJob kills an attempt: a running one frees its nodes (the reclaimed
// node-seconds are accounted as straggler loss), a pending one leaves the
// queue. The attempt bump orphans every queued completion/failure event
// for the job.
func (c *Cluster) cancelJob(j *Job, why string) {
	if j.Completed || j.Failed || j.cancelled {
		return
	}
	j.cancelled = true
	c.superviseForget(j)
	c.obsEnd(j, "cancelled")
	c.Supervise.Note(jobKey(j), "cancel", why)
	j.Attempt++ // orphan queued events for the cancelled attempt
	if j.Started {
		c.freeNodes += j.Nodes
		if c.isSmall(j) {
			c.runningSmall--
		}
		c.StragglerNodeSeconds += float64(j.Nodes) * (c.Sim.Now() - j.StartTime)
		return
	}
	for i, q := range c.pending {
		if q == j {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
}
