package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/fs"
	"repro/internal/platform"
)

func smallMachine() platform.Machine {
	return platform.Machine{
		Name: "test", Nodes: 10, CoresPerNode: 16, ChargeFactor: 30,
		CPUFactor: 1, IOBandwidth: 1e9, NetBandwidth: 1e9,
	}
}

func TestSubmitValidation(t *testing.T) {
	var sim des.Sim
	c, err := NewCluster(&sim, smallMachine())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(&Job{Name: "too-big", Nodes: 11, Duration: 1}); err == nil {
		t.Error("expected node-count error")
	}
	if err := c.Submit(&Job{Name: "zero", Nodes: 0, Duration: 1}); err == nil {
		t.Error("expected zero-node error")
	}
	if err := c.Submit(&Job{Name: "neg", Nodes: 1, Duration: -1}); err == nil {
		t.Error("expected duration error")
	}
	if _, err := NewCluster(&sim, platform.Machine{Name: "bad"}); err == nil {
		t.Error("expected machine validation error")
	}
}

func TestJobRunsAndFreesNodes(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	j := &Job{Name: "a", Nodes: 4, Duration: 100}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !j.Completed || j.StartTime != 0 || j.EndTime != 100 {
		t.Errorf("job = %+v", j)
	}
	if c.FreeNodes() != 10 {
		t.Errorf("free = %d", c.FreeNodes())
	}
	if len(c.Finished()) != 1 {
		t.Errorf("finished = %d", len(c.Finished()))
	}
}

func TestJobsQueueOnNodeContention(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	a := &Job{Name: "a", Nodes: 8, Duration: 50}
	b := &Job{Name: "b", Nodes: 8, Duration: 30}
	if err := c.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(b); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if a.StartTime != 0 {
		t.Errorf("a started at %v", a.StartTime)
	}
	if b.StartTime != 50 {
		t.Errorf("b started at %v, want 50 (after a releases nodes)", b.StartTime)
	}
	if b.QueueWait() != 50 {
		t.Errorf("b waited %v", b.QueueWait())
	}
}

func TestSmallJobsCanRunTogether(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	a := &Job{Name: "a", Nodes: 3, Duration: 50}
	b := &Job{Name: "b", Nodes: 3, Duration: 50}
	if err := c.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(b); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if a.StartTime != 0 || b.StartTime != 0 {
		t.Errorf("starts = %v %v, want both 0", a.StartTime, b.StartTime)
	}
}

// Titan's queue policy: at most two sub-125-node jobs at once (§3.2).
func TestTitanSmallJobPolicy(t *testing.T) {
	var sim des.Sim
	titan := platform.Titan()
	c, _ := NewCluster(&sim, titan)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := &Job{Name: fmt.Sprintf("small%d", i), Nodes: 4, Duration: 100}
		jobs = append(jobs, j)
		if err := c.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if jobs[0].StartTime != 0 || jobs[1].StartTime != 0 {
		t.Errorf("first two should start immediately: %v %v", jobs[0].StartTime, jobs[1].StartTime)
	}
	if jobs[2].StartTime != 100 || jobs[3].StartTime != 100 {
		t.Errorf("third/fourth must wait for policy: %v %v", jobs[2].StartTime, jobs[3].StartTime)
	}
	// A large job is not limited by the small-job policy.
	var sim2 des.Sim
	c2, _ := NewCluster(&sim2, titan)
	s1 := &Job{Name: "s1", Nodes: 4, Duration: 100}
	s2 := &Job{Name: "s2", Nodes: 4, Duration: 100}
	big := &Job{Name: "big", Nodes: 1000, Duration: 100}
	for _, j := range []*Job{s1, s2, big} {
		if err := c2.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	sim2.Run()
	if big.StartTime != 0 {
		t.Errorf("large job blocked by small-job policy: started %v", big.StartTime)
	}
}

func TestExtraQueueWait(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	c.ExtraQueueWait = func(j *Job) float64 {
		if j.Nodes >= 10 {
			return 86400 // a day for full-machine requests
		}
		return 60
	}
	full := &Job{Name: "full", Nodes: 10, Duration: 10}
	small := &Job{Name: "small", Nodes: 1, Duration: 10}
	if err := c.Submit(full); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(small); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if small.StartTime != 60 {
		t.Errorf("small started %v, want 60", small.StartTime)
	}
	if full.StartTime != 86400 {
		t.Errorf("full started %v, want 86400", full.StartTime)
	}
}

func TestOnStartOnComplete(t *testing.T) {
	var sim des.Sim
	c, _ := NewCluster(&sim, smallMachine())
	var events []string
	j := &Job{
		Name: "j", Nodes: 1, Duration: 5,
		OnStart:    func(j *Job) { events = append(events, fmt.Sprintf("start@%v", j.StartTime)) },
		OnComplete: func(j *Job) { events = append(events, fmt.Sprintf("end@%v", j.EndTime)) },
	}
	if err := c.Submit(j); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(events) != 2 || events[0] != "start@0" || events[1] != "end@5" {
		t.Errorf("events = %v", events)
	}
}

// The listener: files appearing over time trigger analysis jobs while the
// "main job" still runs — co-scheduling.
func TestListenerSubmitsJobsAsFilesAppear(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "lustre")
	c, _ := NewCluster(&sim, smallMachine())
	var analysisStarts []float64
	listener := &Listener{
		Sim: &sim, FS: storage, Cluster: c,
		Prefix:       "out/step",
		PollInterval: 10,
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{
				Name: "analyze-" + path, Nodes: 2, Duration: 30,
				OnStart: func(j *Job) { analysisStarts = append(analysisStarts, j.StartTime) },
			}
		},
	}
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}
	// Main application emits a file every 100 s.
	for i := 0; i < 3; i++ {
		at := float64(i) * 100
		path := fmt.Sprintf("out/step%03d.gio", i)
		sim.At(at, func() { storage.Write(path, 1e9, 5, nil, nil) })
	}
	// Main app "ends" at t=300; listener stops then.
	sim.At(300, func() { listener.Stop(); listener.FinalSweep() })
	sim.Run()
	if listener.Submitted != 3 {
		t.Fatalf("submitted = %d, want 3", listener.Submitted)
	}
	if len(analysisStarts) != 3 {
		t.Fatalf("starts = %v", analysisStarts)
	}
	// Each analysis job starts within one poll of its file landing.
	for i, start := range analysisStarts {
		landed := float64(i)*100 + 5
		if start < landed || start > landed+listener.PollInterval+1 {
			t.Errorf("job %d started %v, file landed %v", i, start, landed)
		}
	}
	if listener.Polls < 29 {
		t.Errorf("polls = %d", listener.Polls)
	}
}

func TestListenerValidation(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "l")
	c, _ := NewCluster(&sim, smallMachine())
	l := &Listener{Sim: &sim, FS: storage, Cluster: c, PollInterval: 0, MakeJob: func(string, *fs.File) *Job { return nil }}
	if err := l.Start(); err == nil {
		t.Error("expected poll interval error")
	}
	l2 := &Listener{Sim: &sim, FS: storage, Cluster: c, PollInterval: 5}
	if err := l2.Start(); err == nil {
		t.Error("expected MakeJob error")
	}
}

func TestListenerFinalSweepCatchesLateFiles(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "l")
	c, _ := NewCluster(&sim, smallMachine())
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 1000, // slow poller
		MakeJob: func(path string, f *fs.File) *Job {
			return &Job{Name: path, Nodes: 1, Duration: 1}
		},
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	// File lands at t=10; main app ends at t=20, before the first poll.
	sim.At(10, func() { storage.Write("out/last.gio", 1, 0, nil, nil) })
	sim.At(20, func() { l.Stop(); l.FinalSweep() })
	sim.RunUntil(30)
	if l.Submitted != 1 {
		t.Errorf("submitted = %d; the final sweep must catch the last file", l.Submitted)
	}
}

func TestListenerSkipsNilJobs(t *testing.T) {
	var sim des.Sim
	storage := fs.New(&sim, "l")
	c, _ := NewCluster(&sim, smallMachine())
	l := &Listener{
		Sim: &sim, FS: storage, Cluster: c, Prefix: "out/",
		PollInterval: 5,
		MakeJob:      func(path string, f *fs.File) *Job { return nil },
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	storage.Write("out/x", 1, 0, nil, nil)
	sim.At(20, l.Stop)
	sim.Run()
	if l.Submitted != 0 {
		t.Errorf("submitted = %d", l.Submitted)
	}
}

// Property: under random job streams the scheduler never oversubscribes
// nodes, never starts a job before its eligibility, and completes every
// job.
func TestPropertySchedulerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sim des.Sim
		m := smallMachine()
		m.Nodes = 16
		m.SmallJobLimit = 2
		m.SmallJobNodes = 4
		c, err := NewCluster(&sim, m)
		if err != nil {
			return false
		}
		c.ExtraQueueWait = func(j *Job) float64 { return float64(j.Nodes) }
		inUse := 0
		maxInUse := 0
		ok := true
		var jobs []*Job
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			j := &Job{
				Name:     fmt.Sprintf("j%d", i),
				Nodes:    1 + rng.Intn(16),
				Duration: float64(1 + rng.Intn(100)),
			}
			j.OnStart = func(j *Job) {
				inUse += j.Nodes
				if inUse > maxInUse {
					maxInUse = inUse
				}
				if inUse > m.Nodes {
					ok = false
				}
				if j.StartTime < j.EligibleTime {
					ok = false
				}
			}
			j.OnComplete = func(j *Job) { inUse -= j.Nodes }
			jobs = append(jobs, j)
			at := float64(rng.Intn(50))
			jLocal := j
			sim.At(at, func() {
				if err := c.Submit(jLocal); err != nil {
					ok = false
				}
			})
		}
		sim.Run()
		for _, j := range jobs {
			if !j.Completed {
				return false
			}
			if j.EndTime-j.StartTime != j.Duration {
				return false
			}
		}
		return ok && inUse == 0 && maxInUse <= m.Nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
