// Package cosmo supplies the ΛCDM background cosmology the simulation and
// analysis layers share: expansion history, linear growth, the primordial
// matter power spectrum used to seed initial conditions, and a Press-
// Schechter-style halo mass function used by the platform model to project
// halo populations at paper scale (8192³ particles) without running the
// paper-scale simulation.
//
// The paper's simulations (Q Continuum and its 1024³ downscaled companion)
// use the standard ΛCDM parameters of their era; the defaults here follow
// the WMAP-7-like values HACC runs were configured with.
package cosmo

import (
	"fmt"
	"math"
	"sync"
)

// Params holds the background cosmological parameters.
type Params struct {
	// OmegaM is the total matter density parameter today.
	OmegaM float64
	// OmegaL is the dark-energy density parameter today.
	OmegaL float64
	// OmegaB is the baryon density parameter (shapes the transfer function).
	OmegaB float64
	// H0 is the Hubble constant in km/s/Mpc.
	H0 float64
	// Sigma8 normalizes the power spectrum within a sphere of 8 Mpc/h.
	Sigma8 float64
	// NS is the scalar spectral index.
	NS float64
}

// Default returns WMAP-7-like parameters matching the HACC production runs.
func Default() Params {
	return Params{OmegaM: 0.265, OmegaL: 0.735, OmegaB: 0.0448, H0: 71.0, Sigma8: 0.8, NS: 0.963}
}

// Validate reports an error for unphysical parameters.
func (p Params) Validate() error {
	switch {
	case p.OmegaM <= 0:
		return fmt.Errorf("cosmo: OmegaM must be positive, got %g", p.OmegaM)
	case p.OmegaL < 0:
		return fmt.Errorf("cosmo: OmegaL must be non-negative, got %g", p.OmegaL)
	case p.H0 <= 0:
		return fmt.Errorf("cosmo: H0 must be positive, got %g", p.H0)
	case p.Sigma8 <= 0:
		return fmt.Errorf("cosmo: Sigma8 must be positive, got %g", p.Sigma8)
	}
	return nil
}

// LittleH returns the dimensionless Hubble parameter h = H0/100.
func (p Params) LittleH() float64 { return p.H0 / 100 }

// ScaleFactor converts redshift z to scale factor a = 1/(1+z).
func ScaleFactor(z float64) float64 { return 1 / (1 + z) }

// Redshift converts scale factor a to redshift z = 1/a - 1.
func Redshift(a float64) float64 { return 1/a - 1 }

// E returns the dimensionless Hubble rate E(a) = H(a)/H0 for a flat-ish
// matter + Lambda universe (curvature absorbs any deficit).
func (p Params) E(a float64) float64 {
	omegaK := 1 - p.OmegaM - p.OmegaL
	return math.Sqrt(p.OmegaM/(a*a*a) + omegaK/(a*a) + p.OmegaL)
}

// OmegaMAt returns the matter density parameter at scale factor a.
func (p Params) OmegaMAt(a float64) float64 {
	e := p.E(a)
	return p.OmegaM / (a * a * a * e * e)
}

// GrowthFactor returns the linear growth factor D(a), normalized so that
// D(1) = 1, using the Carroll, Press & Turner (1992) fitting form. The
// Zel'dovich initial-condition generator scales the z=0 power spectrum back
// to the starting redshift with this factor.
func (p Params) GrowthFactor(a float64) float64 {
	return p.growthUnnormalized(a) / p.growthUnnormalized(1)
}

func (p Params) growthUnnormalized(a float64) float64 {
	om := p.OmegaMAt(a)
	e := p.E(a)
	ol := p.OmegaL / (e * e)
	g := 2.5 * om / (math.Pow(om, 4.0/7.0) - ol + (1+om/2)*(1+ol/70))
	return g * a
}

// GrowthRate returns the logarithmic growth rate f = dlnD/dlna ≈ Ωm(a)^0.55,
// which sets the Zel'dovich velocities.
func (p Params) GrowthRate(a float64) float64 {
	return math.Pow(p.OmegaMAt(a), 0.55)
}

// TransferBBKS evaluates the BBKS (Bardeen, Bond, Kaiser & Szalay 1986) CDM
// transfer function with the Sugiyama (1995) baryon-corrected shape
// parameter. k is in h/Mpc.
func (p Params) TransferBBKS(k float64) float64 {
	if k <= 0 {
		return 1
	}
	h := p.LittleH()
	gamma := p.OmegaM * h * math.Exp(-p.OmegaB*(1+math.Sqrt(2*h)/p.OmegaM))
	q := k / gamma
	return math.Log(1+2.34*q) / (2.34 * q) *
		math.Pow(1+3.89*q+math.Pow(16.1*q, 2)+math.Pow(5.46*q, 3)+math.Pow(6.71*q, 4), -0.25)
}

// PowerSpectrum returns the linear matter power spectrum P(k) at z=0 in
// (Mpc/h)³, normalized to Sigma8. k is in h/Mpc.
func (p Params) PowerSpectrum(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := p.TransferBBKS(k)
	unnorm := math.Pow(k, p.NS) * t * t
	return unnorm * p.sigma8Norm()
}

// normCache memoizes the sigma8 normalization integral per parameter set.
// Params is comparable (all scalar fields), so it keys the map directly.
var normCache sync.Map // Params -> float64

// sigma8Norm returns the power-spectrum normalization constant, cached per
// parameter set: initial-condition generation evaluates PowerSpectrum once
// per Fourier mode and must not re-run the variance integral each time.
func (p Params) sigma8Norm() float64 {
	if v, ok := normCache.Load(p); ok {
		return v.(float64)
	}
	s2 := p.sigmaR2Unnormalized(8)
	norm := p.Sigma8 * p.Sigma8 / s2
	normCache.Store(p, norm)
	return norm
}

// sigmaR2Unnormalized integrates the unnormalized variance smoothed with a
// top-hat window of radius r (Mpc/h) using the trapezoid rule in ln k.
func (p Params) sigmaR2Unnormalized(r float64) float64 {
	const (
		lnkMin = -9.0
		lnkMax = 9.0
		steps  = 2048
	)
	dlnk := (lnkMax - lnkMin) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		lnk := lnkMin + float64(i)*dlnk
		k := math.Exp(lnk)
		t := p.TransferBBKS(k)
		pk := math.Pow(k, p.NS) * t * t
		w := topHatWindow(k * r)
		integrand := pk * w * w * k * k * k / (2 * math.Pi * math.Pi)
		weight := 1.0
		if i == 0 || i == steps {
			weight = 0.5
		}
		sum += weight * integrand * dlnk
	}
	return sum
}

// SigmaR returns the rms linear density fluctuation in a top-hat sphere of
// radius r Mpc/h at z=0.
func (p Params) SigmaR(r float64) float64 {
	return math.Sqrt(p.sigmaR2Unnormalized(r) * p.sigma8Norm())
}

func topHatWindow(x float64) float64 {
	if x < 1e-6 {
		return 1 - x*x/10
	}
	return 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
}

// RhoCrit0 is the critical density today in (Msun/h) / (Mpc/h)³.
const RhoCrit0 = 2.775e11

// MeanMatterDensity returns the comoving mean matter density in
// (Msun/h)/(Mpc/h)³.
func (p Params) MeanMatterDensity() float64 { return p.OmegaM * RhoCrit0 }

// ParticleMass returns the mass of one simulation particle, in Msun/h, for
// np³ particles in a box of side boxSize Mpc/h. The paper quotes
// ~10⁸ Msun for the Q Continuum mass resolution; with its 1300 Mpc/h box
// and 8192³ particles this formula reproduces that scale.
func (p Params) ParticleMass(boxSize float64, np int) float64 {
	vol := boxSize * boxSize * boxSize
	n := float64(np)
	return p.MeanMatterDensity() * vol / (n * n * n)
}

// LagrangianRadius returns the comoving radius (Mpc/h) of a sphere that
// contains mass m (Msun/h) at the mean density.
func (p Params) LagrangianRadius(m float64) float64 {
	return math.Cbrt(3 * m / (4 * math.Pi * p.MeanMatterDensity()))
}

// MassFunction evaluates a Press-Schechter halo mass function:
// dn/dlnM in halos per (Mpc/h)³ per e-folding of mass, at redshift z.
// The platform model uses it to synthesize the paper-scale halo population
// for Figures 3-4 and Table 2 without an 8192³ run; only the shape (steeply
// falling counts with a rare massive tail that grows toward z=0) matters
// for the workflow conclusions.
func (p Params) MassFunction(m, z float64) float64 {
	const deltaC = 1.686
	a := ScaleFactor(z)
	d := p.GrowthFactor(a)
	r := p.LagrangianRadius(m)
	sigma := p.SigmaR(r) * d
	if sigma <= 0 {
		return 0
	}
	// d ln sigma / d ln M via centered difference.
	eps := 0.01
	rp := p.LagrangianRadius(m * (1 + eps))
	rm := p.LagrangianRadius(m * (1 - eps))
	dlnSigma := (math.Log(p.SigmaR(rp)) - math.Log(p.SigmaR(rm))) / (2 * eps)
	nu := deltaC / sigma
	f := math.Sqrt(2/math.Pi) * nu * math.Exp(-nu*nu/2)
	rho := p.MeanMatterDensity()
	return f * (rho / m) * math.Abs(dlnSigma)
}

// ExpectedHaloCounts integrates the mass function over logarithmic mass
// bins for a box of side boxSize (Mpc/h) at redshift z, returning the
// expected number of halos per bin. Bin i covers masses
// [mMin·ratio^i, mMin·ratio^(i+1)).
func (p Params) ExpectedHaloCounts(boxSize, mMin float64, ratio float64, bins int, z float64) []float64 {
	vol := boxSize * boxSize * boxSize
	out := make([]float64, bins)
	const sub = 4 // sub-steps per bin for the integral in ln M
	for i := 0; i < bins; i++ {
		lo := mMin * math.Pow(ratio, float64(i))
		dlnm := math.Log(ratio) / sub
		acc := 0.0
		for s := 0; s < sub; s++ {
			m := lo * math.Exp((float64(s)+0.5)*dlnm)
			acc += p.MassFunction(m, z) * dlnm
		}
		out[i] = acc * vol
	}
	return out
}
