package cosmo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{OmegaM: 0, OmegaL: 0.7, H0: 70, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaL: -1, H0: 70, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaL: 0.7, H0: 0, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaL: 0.7, H0: 70, Sigma8: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestScaleFactorRedshiftInverse(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 10, 200} {
		a := ScaleFactor(z)
		if got := Redshift(a); math.Abs(got-z) > 1e-12*(1+z) {
			t.Errorf("Redshift(ScaleFactor(%v)) = %v", z, got)
		}
	}
	if ScaleFactor(0) != 1 {
		t.Error("a(z=0) should be 1")
	}
}

func TestHubbleRateToday(t *testing.T) {
	p := Default()
	// Flat universe: E(1) = 1.
	if e := p.E(1); math.Abs(e-1) > 1e-6 {
		t.Errorf("E(1) = %v, want 1", e)
	}
	// Matter domination at early times: E ~ sqrt(Om/a³).
	a := 1e-3
	want := math.Sqrt(p.OmegaM / (a * a * a))
	if e := p.E(a); math.Abs(e-want)/want > 0.01 {
		t.Errorf("E(%v) = %v, want ~%v", a, e, want)
	}
}

func TestOmegaMAtLimits(t *testing.T) {
	p := Default()
	if om := p.OmegaMAt(1); math.Abs(om-p.OmegaM) > 1e-9 {
		t.Errorf("OmegaM(a=1) = %v", om)
	}
	if om := p.OmegaMAt(1e-4); math.Abs(om-1) > 0.01 {
		t.Errorf("OmegaM at early times = %v, want ~1", om)
	}
}

func TestGrowthFactorNormalizedAndMonotonic(t *testing.T) {
	p := Default()
	if d := p.GrowthFactor(1); math.Abs(d-1) > 1e-12 {
		t.Errorf("D(1) = %v, want 1", d)
	}
	prev := 0.0
	for a := 0.01; a <= 1.0; a += 0.01 {
		d := p.GrowthFactor(a)
		if d <= prev {
			t.Fatalf("growth factor not monotonic at a=%v: %v <= %v", a, d, prev)
		}
		prev = d
	}
	// During matter domination D ~ a.
	ratio := p.GrowthFactor(0.02) / p.GrowthFactor(0.01)
	if math.Abs(ratio-2) > 0.02 {
		t.Errorf("matter-era growth ratio = %v, want ~2", ratio)
	}
}

func TestGrowthRateBounds(t *testing.T) {
	p := Default()
	f0 := p.GrowthRate(1)
	if f0 <= 0.4 || f0 >= 0.6 {
		t.Errorf("f(z=0) = %v, want ~0.5 for OmegaM=0.265", f0)
	}
	fEarly := p.GrowthRate(0.01)
	if math.Abs(fEarly-1) > 0.01 {
		t.Errorf("f early = %v, want ~1", fEarly)
	}
}

func TestTransferBBKSLimits(t *testing.T) {
	p := Default()
	if tr := p.TransferBBKS(1e-6); math.Abs(tr-1) > 0.01 {
		t.Errorf("T(k->0) = %v, want 1", tr)
	}
	if tr := p.TransferBBKS(0); tr != 1 {
		t.Errorf("T(0) = %v", tr)
	}
	// Monotonically decreasing.
	prev := 2.0
	for _, k := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} {
		tr := p.TransferBBKS(k)
		if tr >= prev {
			t.Errorf("transfer not decreasing at k=%v", k)
		}
		if tr < 0 {
			t.Errorf("negative transfer at k=%v", k)
		}
		prev = tr
	}
}

func TestSigma8SelfConsistent(t *testing.T) {
	p := Default()
	if got := p.SigmaR(8); math.Abs(got-p.Sigma8) > 1e-6 {
		t.Errorf("SigmaR(8) = %v, want %v", got, p.Sigma8)
	}
}

func TestSigmaRDecreasesWithRadius(t *testing.T) {
	p := Default()
	prev := math.Inf(1)
	for _, r := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		s := p.SigmaR(r)
		if s >= prev {
			t.Errorf("SigmaR not decreasing at r=%v", r)
		}
		prev = s
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	p := Default()
	if p.PowerSpectrum(0) != 0 {
		t.Error("P(0) should be 0")
	}
	if p.PowerSpectrum(-1) != 0 {
		t.Error("P(k<0) should be 0")
	}
	// P(k) rises as ~k^ns at low k, falls at high k: peak in between.
	pLow := p.PowerSpectrum(1e-4)
	pPeak := p.PowerSpectrum(0.02)
	pHigh := p.PowerSpectrum(10)
	if !(pPeak > pLow && pPeak > pHigh) {
		t.Errorf("power spectrum not peaked: %v %v %v", pLow, pPeak, pHigh)
	}
}

func TestParticleMassQContinuumScale(t *testing.T) {
	p := Default()
	// Q Continuum: 8192³ particles, ~1300 Mpc/h box -> ~1.5e8 Msun/h,
	// matching the paper's "~10^8 Msun" mass resolution.
	m := p.ParticleMass(1300/p.LittleH()*p.LittleH(), 8192) // 1300 Mpc/h box
	if m < 2e7 || m > 1e9 {
		t.Errorf("Q Continuum particle mass = %.3g Msun/h, want ~1e8", m)
	}
	// Downscaled run: 1024³ in (162.5 Mpc)³ with similar mass resolution
	// (the paper's key scaling claim: volume drops 512x, resolution similar).
	h := p.LittleH()
	mSmall := p.ParticleMass(162.5*h, 1024)
	mBig := p.ParticleMass(1300*h, 8192)
	if ratio := mSmall / mBig; ratio < 0.5 || ratio > 2.5 {
		t.Errorf("mass resolution ratio small/large = %v, want ~1", ratio)
	}
}

func TestLagrangianRadiusInvertsMass(t *testing.T) {
	p := Default()
	m := 1e13
	r := p.LagrangianRadius(m)
	back := 4 * math.Pi / 3 * r * r * r * p.MeanMatterDensity()
	if math.Abs(back-m)/m > 1e-9 {
		t.Errorf("round trip mass = %v, want %v", back, m)
	}
}

func TestMassFunctionShape(t *testing.T) {
	p := Default()
	// Counts fall steeply with mass.
	n12 := p.MassFunction(1e12, 0)
	n14 := p.MassFunction(1e14, 0)
	n15 := p.MassFunction(1e15, 0)
	if !(n12 > n14 && n14 > n15) {
		t.Errorf("mass function not decreasing: %v %v %v", n12, n14, n15)
	}
	if n12 <= 0 {
		t.Error("mass function should be positive at 1e12")
	}
	// Massive halos are rarer at higher redshift (structures grow).
	if p.MassFunction(1e15, 1.68) >= p.MassFunction(1e15, 0) {
		t.Error("1e15 halos should be rarer at z=1.68 than at z=0")
	}
}

func TestExpectedHaloCountsDecreasing(t *testing.T) {
	p := Default()
	counts := p.ExpectedHaloCounts(162.5*p.LittleH(), 1e11, 10, 4, 0)
	if len(counts) != 4 {
		t.Fatalf("got %d bins", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Errorf("bin %d not decreasing: %v >= %v", i, counts[i], counts[i-1])
		}
	}
	if counts[0] <= 0 {
		t.Error("lowest mass bin should have halos")
	}
}

// Property: growth factor stays in (0, 1] for a in (0, 1].
func TestPropertyGrowthFactorBounded(t *testing.T) {
	p := Default()
	f := func(raw uint16) bool {
		a := (float64(raw) + 1) / 65537 // in (0, 1)
		d := p.GrowthFactor(a)
		return d > 0 && d <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PowerSpectrum is non-negative everywhere.
func TestPropertyPowerSpectrumNonNegative(t *testing.T) {
	p := Default()
	f := func(raw uint32) bool {
		k := math.Exp(float64(raw%2000)/100 - 10) // k in e^-10 .. e^10
		return p.PowerSpectrum(k) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
