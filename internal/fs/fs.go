// Package fs models the shared storage tiers of the paper's workflows on
// the virtual clock: the parallel file system that Level 1/Level 2 data
// passes through, and the external shared-memory staging area (NVRAM /
// burst buffer) of the hypothetical in-transit variant — "the data is now
// stored on a separate memory device ... connected to both the main HPC
// system as well as the analysis cluster" (§4.2).
//
// The package tracks only visibility and sizes; transfer durations are
// computed by the caller from the machine models (internal/platform), so
// one System instance can sit between clusters with different bandwidths.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/des"
	"repro/internal/fault"
)

// ErrWriteFailed reports a write that errored outright: no file landed.
var ErrWriteFailed = errors.New("fs: write failed")

// File is one stored object.
type File struct {
	// Path names the file.
	Path string
	// Bytes is the payload size.
	Bytes float64
	// VisibleAt is the virtual time the write completed; the file cannot
	// be listed or read before then.
	VisibleAt float64
	// Payload optionally carries the in-memory data product the file
	// represents (the workflow engine hands halo particle sets through
	// here instead of re-serializing them).
	Payload any
	// Corrupt marks a file whose bytes rotted at rest: its size and
	// visibility are unchanged (silent corruption trips no length check),
	// only end-to-end verification notices.
	Corrupt bool
}

// System is one storage tier on a discrete-event clock.
type System struct {
	sim      *des.Sim
	name     string
	files    map[string]*File
	faults   *fault.Injector
	writeSeq map[string]int

	// Fault counters (zero under a nil injector).
	WriteFailures   int
	TruncatedWrites int
	// Corruptions counts files marked corrupt at rest (see Corrupt).
	Corruptions int
}

// New creates a storage tier bound to the simulation clock.
func New(sim *des.Sim, name string) *System {
	return &System{sim: sim, name: name, files: map[string]*File{}, writeSeq: map[string]int{}}
}

// Name identifies the tier ("lustre", "burst-buffer", ...).
func (s *System) Name() string { return s.name }

// SetFaults attaches a fault injector: writes may then fail outright or
// land silently truncated. A nil injector restores the failure-free tier.
func (s *System) SetFaults(inj *fault.Injector) { s.faults = inj }

// Write starts writing a file that takes duration seconds to land; done
// (if non-nil) fires when the write attempt resolves, whether or not the
// file landed (legacy interface — use WriteChecked to observe failures).
// Overwrites replace the old file at completion.
func (s *System) Write(path string, bytes, duration float64, payload any, done func()) {
	s.WriteChecked(path, bytes, duration, payload, func(error) {
		if done != nil {
			done()
		}
	})
}

// WriteChecked starts writing a file that takes duration seconds to land;
// done (if non-nil) fires when the attempt resolves. Under an attached
// fault injector the write may fail outright (done receives ErrWriteFailed
// and no file lands) or land silently truncated (done receives nil and
// only a size check — VerifySize — catches the short file). Each attempt
// at the same path draws an independent fault outcome, so re-driving a
// failed write can succeed.
func (s *System) WriteChecked(path string, bytes, duration float64, payload any, done func(error)) {
	attempt := s.writeSeq[path]
	s.writeSeq[path]++
	outcome, frac := s.faults.Write(s.name+":"+path, attempt)
	completeAt := s.sim.Now() + duration
	s.sim.After(duration, func() {
		switch outcome {
		case fault.WriteFail:
			s.WriteFailures++
			if done != nil {
				done(ErrWriteFailed)
			}
		case fault.WriteTruncate:
			s.TruncatedWrites++
			s.files[path] = &File{Path: path, Bytes: bytes * frac, VisibleAt: completeAt, Payload: payload}
			if done != nil {
				done(nil)
			}
		default:
			s.files[path] = &File{Path: path, Bytes: bytes, VisibleAt: completeAt, Payload: payload}
			if done != nil {
				done(nil)
			}
		}
	})
}

// Stat returns a visible file.
func (s *System) Stat(path string) (*File, error) {
	f, ok := s.files[path]
	if !ok || f.VisibleAt > s.sim.Now() {
		return nil, fmt.Errorf("fs(%s): %s does not exist at t=%.1f", s.name, path, s.sim.Now())
	}
	return f, nil
}

// VerifySize stats a file and checks its size against what the writer
// intended — the reader-side guard that turns a silent truncation into a
// detectable error.
func (s *System) VerifySize(path string, wantBytes float64) (*File, error) {
	f, err := s.Stat(path)
	if err != nil {
		return nil, err
	}
	if f.Bytes != wantBytes {
		return nil, fmt.Errorf("fs(%s): %s truncated: %.0f of %.0f bytes", s.name, path, f.Bytes, wantBytes)
	}
	return f, nil
}

// Read starts reading a visible file, invoking done with it after duration
// seconds. Reading a missing file is an immediate error.
func (s *System) Read(path string, duration float64, done func(*File)) error {
	f, err := s.Stat(path)
	if err != nil {
		return err
	}
	s.sim.After(duration, func() { done(f) })
	return nil
}

// List returns the visible paths with the given prefix, sorted. This is
// the primitive the co-scheduling listener polls ("The listener launches
// analysis jobs when pre-specified output files are generated by the main
// application", §3.2).
func (s *System) List(prefix string) []string {
	var out []string
	for path, f := range s.files {
		if strings.HasPrefix(path, prefix) && f.VisibleAt <= s.sim.Now() {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the sizes of all visible files with the prefix.
func (s *System) TotalBytes(prefix string) float64 {
	total := 0.0
	for path, f := range s.files {
		if strings.HasPrefix(path, prefix) && f.VisibleAt <= s.sim.Now() {
			total += f.Bytes
		}
	}
	return total
}

// Delete removes a file immediately (no-op when absent).
func (s *System) Delete(path string) { delete(s.files, path) }

// Corrupt marks a resident file as silently rotted at rest, reporting
// whether a file was there to rot. Size and visibility are untouched —
// that is what makes the corruption silent. A later overwrite of the
// path clears the mark (the rewrite lands fresh bytes).
func (s *System) Corrupt(path string) bool {
	f, ok := s.files[path]
	if !ok || f.Corrupt {
		return ok
	}
	f.Corrupt = true
	s.Corruptions++
	return true
}

// Restore places a file on the tier, visible from t=0 — the campaign
// resume path re-populating the modelled storage with products that
// survived a previous incarnation (they physically exist, so the restarted
// run must see them without re-paying the write).
func (s *System) Restore(path string, bytes float64) {
	s.files[path] = &File{Path: path, Bytes: bytes, VisibleAt: 0}
}
