package fs

import (
	"testing"

	"repro/internal/des"
)

func TestWriteVisibilityTiming(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	var wrote bool
	s.Write("out/step10.gio", 1e9, 60, nil, func() { wrote = true })
	// Not visible before completion.
	sim.RunUntil(59)
	if _, err := s.Stat("out/step10.gio"); err == nil {
		t.Error("file visible before write completed")
	}
	if len(s.List("out/")) != 0 {
		t.Error("List shows unfinished file")
	}
	sim.RunUntil(61)
	if !wrote {
		t.Error("done callback not fired")
	}
	f, err := s.Stat("out/step10.gio")
	if err != nil {
		t.Fatal(err)
	}
	if f.Bytes != 1e9 || f.VisibleAt != 60 {
		t.Errorf("file = %+v", f)
	}
}

func TestListPrefixAndOrder(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.Write("out/b", 1, 0, nil, nil)
	s.Write("out/a", 1, 0, nil, nil)
	s.Write("other/c", 1, 0, nil, nil)
	sim.Run()
	got := s.List("out/")
	if len(got) != 2 || got[0] != "out/a" || got[1] != "out/b" {
		t.Errorf("list = %v", got)
	}
	if total := s.TotalBytes("out/"); total != 2 {
		t.Errorf("total = %v", total)
	}
}

func TestReadRequiresVisibleFile(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "bb")
	if err := s.Read("missing", 1, func(*File) {}); err == nil {
		t.Error("expected error")
	}
	s.Write("data", 5, 10, "payload", nil)
	sim.RunUntil(10)
	var got *File
	if err := s.Read("data", 7, func(f *File) { got = f }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got == nil || got.Payload.(string) != "payload" {
		t.Errorf("read = %+v", got)
	}
	if sim.Now() != 17 {
		t.Errorf("read completed at %v, want 17", sim.Now())
	}
}

func TestDelete(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.Write("x", 1, 0, nil, nil)
	sim.Run()
	s.Delete("x")
	if _, err := s.Stat("x"); err == nil {
		t.Error("deleted file still visible")
	}
	s.Delete("x") // idempotent
}

func TestOverwriteReplacesAtCompletion(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.Write("f", 100, 0, nil, nil)
	sim.Run()
	s.Write("f", 200, 50, nil, nil)
	sim.RunUntil(25)
	f, err := s.Stat("f")
	if err != nil || f.Bytes != 100 {
		t.Errorf("old file gone early: %+v %v", f, err)
	}
	sim.Run()
	f, _ = s.Stat("f")
	if f.Bytes != 200 {
		t.Errorf("overwrite missing: %+v", f)
	}
}
