package fs

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
)

func TestWriteCheckedFailureLandsNothing(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.SetFaults(fault.MustNew(fault.Profile{Seed: 1, WriteFailProb: 1}))
	var got error
	s.WriteChecked("out/a", 100, 10, nil, func(err error) { got = err })
	sim.Run()
	if !errors.Is(got, ErrWriteFailed) {
		t.Errorf("err = %v, want ErrWriteFailed", got)
	}
	if _, err := s.Stat("out/a"); err == nil {
		t.Error("failed write landed a file")
	}
	if s.WriteFailures != 1 {
		t.Errorf("WriteFailures = %d", s.WriteFailures)
	}
}

func TestWriteCheckedTruncationIsSilentUntilVerified(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.SetFaults(fault.MustNew(fault.Profile{Seed: 2, WriteTruncateProb: 1}))
	var got error = errors.New("sentinel")
	s.WriteChecked("out/a", 1000, 0, nil, func(err error) { got = err })
	sim.Run()
	if got != nil {
		t.Errorf("truncation must be silent at write time, got %v", got)
	}
	f, err := s.Stat("out/a")
	if err != nil {
		t.Fatal(err)
	}
	if f.Bytes >= 1000 || f.Bytes <= 0 {
		t.Errorf("truncated size = %v, want in (0, 1000)", f.Bytes)
	}
	if _, err := s.VerifySize("out/a", 1000); err == nil {
		t.Error("VerifySize accepted a truncated file")
	}
	if s.TruncatedWrites != 1 {
		t.Errorf("TruncatedWrites = %d", s.TruncatedWrites)
	}
}

func TestVerifySizeAcceptsIntactFile(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.Write("out/a", 500, 0, nil, nil)
	sim.Run()
	if _, err := s.VerifySize("out/a", 500); err != nil {
		t.Errorf("intact file rejected: %v", err)
	}
	if _, err := s.VerifySize("missing", 500); err == nil {
		t.Error("missing file accepted")
	}
}

// Each attempt at the same path draws an independent outcome, so a
// re-driven write can succeed after a failure.
func TestWriteAttemptsDrawIndependently(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.SetFaults(fault.MustNew(fault.Profile{Seed: 5, WriteFailProb: 0.5}))
	outcomes := map[bool]int{}
	for i := 0; i < 40; i++ {
		var failed bool
		s.WriteChecked("out/a", 10, 0, nil, func(err error) { failed = err != nil })
		sim.Run()
		outcomes[failed]++
	}
	if outcomes[true] == 0 || outcomes[false] == 0 {
		t.Errorf("outcomes = %v; attempts must be independent draws", outcomes)
	}
}

// The zero-value profile and the legacy Write path stay failure-free.
func TestZeroProfileWritesAreIntact(t *testing.T) {
	var sim des.Sim
	s := New(&sim, "lustre")
	s.SetFaults(fault.MustNew(fault.Profile{Seed: 99}))
	var done bool
	s.Write("out/a", 100, 5, "p", func() { done = true })
	sim.Run()
	if !done {
		t.Error("done not fired")
	}
	f, err := s.VerifySize("out/a", 100)
	if err != nil || f.Payload.(string) != "p" {
		t.Errorf("file = %+v, err = %v", f, err)
	}
	if s.WriteFailures != 0 || s.TruncatedWrites != 0 {
		t.Errorf("counters nonzero: %d %d", s.WriteFailures, s.TruncatedWrites)
	}
}
