// Command catalog-merge reconciles halo-center catalogs into one complete
// Level 3 product — the paper's final workflow step: "the two files from
// the Titan and Moonlight analysis were merged to provide a complete set
// of halo centers and properties" (§4.1).
//
// Later inputs supersede earlier ones on duplicate halo tags, so pass the
// in-situ catalog first and the off-line catalog last:
//
//	catalog-merge -out complete.centers step040.centers offline.centers
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/catalog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("catalog-merge: ")
	out := flag.String("out", "", "output path (default: stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	merged, err := catalog.MergeFiles(flag.Args())
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := catalog.Write(os.Stdout, merged); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := catalog.WriteFile(*out, merged); err != nil {
		log.Fatal(err)
	}
	log.Printf("merged %d inputs into %s (%d halos)", flag.NArg(), *out, len(merged))
}
