// Command cosmotools is the stand-alone analysis driver: the same
// algorithms HACC invokes in-situ, run off-line over stored particle data
// — "CosmoTools also provides a stand-alone driver that allows the
// algorithms to be invoked asynchronously by co-scheduling another
// analysis run" (§3.1).
//
// It reads a gio particle file (Level 1 snapshot or Level 2 extraction),
// runs the configured analyses, and writes Level 3 products next to the
// input. The co-scheduling listener (cmd/listener) templates invocations
// of this tool.
//
// Usage:
//
//	cosmotools -in out/step030.gio -box 64 [-config ct.ini] [-mode full|centers]
//
// Modes:
//
//	full     halo finding + centers (+ optional P(k), SO, subhalos via config)
//	centers  MBP centers only, treating every input block as one halo's
//	         particles (the Level 2 path: blocks were written per large halo)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/center"
	"repro/internal/ckpt"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/gio"
	"repro/internal/halo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmotools: ")
	var (
		inPath  = flag.String("in", "", "input gio particle file (required)")
		box     = flag.Float64("box", 64, "box side, Mpc/h")
		np      = flag.Int("np", 0, "original particles per dimension (for particle mass); 0 derives from count")
		cfgPath = flag.String("config", "", "CosmoTools config (INI)")
		mode    = flag.String("mode", "full", "full | centers")
		outPath = flag.String("out", "", "output path (default: input + .centers)")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *outPath, *box, *np, *cfgPath, *mode); err != nil {
		log.Fatal(err)
	}
}

func run(inPath, outPath string, box float64, np int, cfgPath, mode string) error {
	blocks, err := gio.ReadFile(inPath)
	if err != nil {
		return err
	}
	if outPath == "" {
		outPath = strings.TrimSuffix(inPath, ".gio") + ".centers"
	}
	params := cosmo.Default()
	merged := gio.Merge(blocks)
	if np == 0 {
		// Assume the file holds the full box.
		np = nearestCube(merged.N())
	}
	mass := params.ParticleMass(box, np)
	log.Printf("read %d particles in %d blocks from %s", merged.N(), len(blocks), inPath)

	start := time.Now()
	var centers []cosmotools.CenterRecord
	switch mode {
	case "full":
		ctx := cosmotools.NewContext(1, 1, box, mass, merged)
		var manager cosmotools.Manager
		manager.Clock = time.Now // off-line driver: wall-clock timings are wanted here
		hf := cosmotools.NewHaloFinder()
		link := 0.2 * box / float64(np)
		if err := hf.SetParameters(map[string]string{
			"linking_length": fmt.Sprint(link), "min_size": "10",
		}); err != nil {
			return err
		}
		if err := manager.Register(hf); err != nil {
			return err
		}
		if cfgPath != "" {
			cfg, err := cosmotools.ParseConfigFile(cfgPath)
			if err != nil {
				return err
			}
			for _, name := range cfg.SectionNames() {
				switch name {
				case "powerspectrum":
					if err := manager.Register(cosmotools.NewPowerSpectrum()); err != nil {
						return err
					}
				case "somass":
					if err := manager.Register(cosmotools.NewSOMass()); err != nil {
						return err
					}
				case "subhalofinder":
					if err := manager.Register(cosmotools.NewSubhaloFinder()); err != nil {
						return err
					}
				}
			}
			if err := manager.Configure(cfg); err != nil {
				return err
			}
		}
		if err := manager.Execute(ctx); err != nil {
			return err
		}
		centers = ctx.Outputs["halofinder/centers"].([]cosmotools.CenterRecord)
		if cat, ok := ctx.Outputs["halofinder/catalog"].(*halo.Catalog); ok {
			log.Printf("found %d halos (largest %d particles)", len(cat.Halos), cat.LargestCount())
		}
	case "centers":
		// Level 2 path: each block is one large halo's particle set.
		for _, b := range blocks {
			p := b.Particles
			if p.N() == 0 {
				continue
			}
			ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, allIndices(p.N()), box)
			res, err := center.BruteForce(ux, uy, uz, center.Options{Mass: mass, Softening: 1e-3})
			if err != nil {
				return err
			}
			centers = append(centers, cosmotools.CenterRecord{
				HaloTag:   minTag(p.Tag),
				MBPTag:    p.Tag[res.Index],
				Pos:       [3]float64{p.X[res.Index], p.Y[res.Index], p.Z[res.Index]},
				Potential: res.Potential,
				Count:     p.N(),
			})
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	log.Printf("analysis took %.2fs", time.Since(start).Seconds())

	var buf bytes.Buffer
	fmt.Fprintln(&buf, "# halo_tag mbp_tag x y z potential count")
	for _, c := range centers {
		fmt.Fprintf(&buf, "%d %d %.6f %.6f %.6f %.6g %d\n",
			c.HaloTag, c.MBPTag, c.Pos[0], c.Pos[1], c.Pos[2], c.Potential, c.Count)
	}
	if err := ckpt.WriteFileAtomic(outPath, buf.Bytes()); err != nil {
		return err
	}
	log.Printf("wrote %d centers to %s", len(centers), outPath)
	return nil
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func minTag(tags []int64) int64 {
	if len(tags) == 0 {
		return -1
	}
	m := tags[0]
	for _, t := range tags[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// nearestCube returns the cube root of n rounded to the nearest integer.
func nearestCube(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	if r > 1 && (r*r*r-n) > (n-(r-1)*(r-1)*(r-1)) {
		r--
	}
	return r
}
