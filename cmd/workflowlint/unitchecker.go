package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON cmd/go writes for a vet tool invocation
// (cmd/go/internal/work.vetConfig). Fields the checker does not consult
// are still listed so the contract is visible in one place.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg
// file, per cmd/go's unit-checker protocol: diagnostics go to stderr
// (or stdout as JSON) and exit status 2 marks findings. Facts imported
// from the PackageVetx files of direct dependencies are merged into one
// store; after analysis the store is gob-serialized to VetxOutput, so
// cross-package facts ride cmd/go's action cache — a cached dependency
// never re-runs, its vetx is simply replayed to dependents.
//
// VetxOnly packages (loaded solely so dependents can import their
// facts) still get parsed, type-checked, and run through the
// fact-producing analyzers, but report no diagnostics. Standard-library
// packages are the exception: none of the suite's fact roots (mpi
// collectives, fs/gio/ckpt/catalog write entry points) can live there,
// so an empty vetx is the complete answer and the parse is skipped.
//
// With fix set, this unit's suggested fixes are applied to (or, with
// diff, previewed against) the package's own source files, so
// `go vet -vettool=workflowlint -fix` carries the fix pipeline too.
//
// SARIF under vet is per-unit: a unit with findings emits its own
// complete log; a clean unit stays silent (unlike the standalone
// driver's single whole-run log) so `go vet` over many packages does
// not drown stdout in empty reports.
func runUnitchecker(cfgPath string, jsonOut, sarifOut, fix, diff bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	store := analysis.NewFactStore()
	if cfg.VetxOnly && cfg.Standard[cfg.ImportPath] {
		if err := writeVetx(cfg.VetxOutput, store); err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		return 0
	}
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: reading facts of %s: %v\n", path, err)
			return 1
		}
		if err := store.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: decoding facts of %s: %v\n", path, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if err := writeVetx(cfg.VetxOutput, store); err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "workflowlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	analyzers := lint.Analyzers()
	if cfg.VetxOnly {
		analyzers = analysis.FactProducers(analyzers)
	}
	diags, raw, err := runPackage(analyzers, fset, files, pkg, info, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput, store); err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	if fix {
		changed, err := runFixes(fset, raw, diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		if diff {
			if changed > 0 {
				return 2
			}
			diags = unfixable(diags)
			if sarifOut && len(diags) == 0 {
				return 0
			}
			return report(diags, jsonOut, sarifOut)
		}
		diags = unfixable(diags)
	}
	if sarifOut && len(diags) == 0 {
		return 0
	}
	return report(diags, jsonOut, sarifOut)
}

// writeVetx lands the serialized fact store at VetxOutput. The encoding
// is deterministic (facts sorted by package, object, type), which
// matters: the vetx content participates in cmd/go's action-cache
// hashing, so a nondeterministic byte stream would spuriously
// invalidate dependent vet actions.
func writeVetx(path string, store *analysis.FactStore) error {
	if path == "" {
		return nil
	}
	data, err := store.Encode()
	if err != nil {
		return fmt.Errorf("encoding facts: %w", err)
	}
	// The vetx file is cmd/go's private action-cache artifact, validated
	// by its own content hash — not a workflow product needing the
	// temp-and-rename commit.
	//lint:allow atomicwrite vetx is cmd/go cache metadata, not a data product
	return os.WriteFile(path, data, 0o666)
}
