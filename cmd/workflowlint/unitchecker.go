package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint/analysis"
)

// vetConfig mirrors the JSON cmd/go writes for a vet tool invocation
// (cmd/go/internal/work.vetConfig). Fields the checker does not consult
// are still listed so the contract is visible in one place.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg
// file, per cmd/go's unit-checker protocol: diagnostics go to stderr
// (or stdout as JSON) and exit status 2 marks findings; the (empty —
// this suite has no cross-package facts) vetx output file must be
// written so cmd/go can cache the action.
func runUnitchecker(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		// This package was loaded only to provide facts to dependents;
		// the suite has none, so the empty vetx is the whole answer.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "workflowlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	return report(runPackage(fset, files, pkg, info), jsonOut)
}

// writeVetx lands the (empty) facts file cmd/go expects at VetxOutput.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	// The vetx file is cmd/go's private action-cache artifact, validated
	// by its own content hash — not a workflow product needing the
	// temp-and-rename commit.
	//lint:allow atomicwrite vetx is cmd/go cache metadata, not a data product
	return os.WriteFile(path, []byte{}, 0o666)
}
