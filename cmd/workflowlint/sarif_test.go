package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// sarifFixedDiags is a hand-built diagnostic set with relative paths,
// so the expected output is position-stable regardless of where the
// test runs. Deliberately unsorted: sarifReport's contract starts
// after sortDiagnostics, so the test sorts first, like report does.
var sarifFixedDiags = []diagnostic{
	{File: "pkg/b/b.go", Line: 12, Col: 3, Analyzer: "errflow", Message: "write error dropped"},
	{File: "pkg/a/a.go", Line: 7, Col: 9, Analyzer: "dettaint", Message: "nondeterministic value from time.Now reaches gio.WriteFile (arg 2) (witness: stamp → data)"},
}

// sarifResultsGolden pins the exact rendering of the results array:
// canonical order, error level, slash paths, 1-based line/column.
// RuleIndex values are resolved against the live rule table rather
// than pinned, so adding an analyzer does not invalidate the golden.
const sarifResultsGolden = `[
  {
    "ruleId": "dettaint",
    "ruleIndex": %d,
    "level": "error",
    "message": {
      "text": "nondeterministic value from time.Now reaches gio.WriteFile (arg 2) (witness: stamp → data)"
    },
    "locations": [
      {
        "physicalLocation": {
          "artifactLocation": {
            "uri": "pkg/a/a.go"
          },
          "region": {
            "startLine": 7,
            "startColumn": 9
          }
        }
      }
    ]
  },
  {
    "ruleId": "errflow",
    "ruleIndex": %d,
    "level": "error",
    "message": {
      "text": "write error dropped"
    },
    "locations": [
      {
        "physicalLocation": {
          "artifactLocation": {
            "uri": "pkg/b/b.go"
          },
          "region": {
            "startLine": 12,
            "startColumn": 3
          }
        }
      }
    ]
  }
]`

func TestSarifReportGolden(t *testing.T) {
	diags := append([]diagnostic(nil), sarifFixedDiags...)
	sortDiagnostics(diags)
	data, err := sarifReport(diags)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("sarifReport output is not valid JSON: %v\n%s", err, data)
	}
	if log.Schema != sarifSchema || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q/%q, want %q/2.1.0", log.Schema, log.Version, sarifSchema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	driver := log.Runs[0].Tool.Driver
	if driver.Name != "workflowlint" {
		t.Errorf("driver name %q, want workflowlint", driver.Name)
	}

	// The rule table is the full suite, sorted by analyzer name, each
	// with a non-empty one-line description.
	if len(driver.Rules) != len(lint.Analyzers()) {
		t.Errorf("rule table has %d entries, want %d (one per analyzer)", len(driver.Rules), len(lint.Analyzers()))
	}
	ids := make([]string, len(driver.Rules))
	for i, r := range driver.Rules {
		ids[i] = r.ID
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has empty shortDescription", r.ID)
		}
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("rules not sorted by id: %v", ids)
	}
	_, index := sarifRules()
	for _, name := range []string{"dettaint", "allocbound", "sharecapture", "errflow", "lockorder"} {
		if _, ok := index[name]; !ok {
			t.Errorf("rule table missing analyzer %q", name)
		}
	}

	// Golden comparison of the results array: indent the raw slice the
	// way it appears nested inside the full document, then compare.
	var resultsBuf bytes.Buffer
	if err := json.Indent(&resultsBuf, log.Runs[0].Results, "", "  "); err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(sarifResultsGolden, "%d", strconv.Itoa(index["dettaint"]), 1)
	want = strings.Replace(want, "%d", strconv.Itoa(index["errflow"]), 1)
	if got := resultsBuf.String(); got != want {
		t.Errorf("results array mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Byte determinism: a second render is identical.
	again, err := sarifReport(diags)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("sarifReport is not byte-deterministic across identical inputs")
	}
}

// TestSarifReportEmpty: a clean run still renders a complete log with
// an empty results array — the shape CI uploaders require.
func TestSarifReportEmpty(t *testing.T) {
	data, err := sarifReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("empty report is not valid JSON: %v\n%s", err, data)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	if log.Runs[0].Results == nil {
		t.Error("results must be an empty array, not null")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("empty input produced %d results", len(log.Runs[0].Results))
	}
}
