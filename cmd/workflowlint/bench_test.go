package main

import (
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// BenchmarkWorkflowlintRepo measures a full standalone analysis pass —
// all twelve analyzers, facts, the call graph, the per-function CFGs,
// and the SSA-lite lowering plus taint fixpoints behind the value-flow
// trio — over every package in this repository. Loading (go list,
// parsing, type-checking) happens once outside the timed loop; the
// benchmark isolates the analysis cost, which is what grows as
// analyzers are added. tuneGC() mirrors the driver: the benchmark
// measures analyzePackages exactly as `workflowlint ./...` runs it.
func BenchmarkWorkflowlintRepo(b *testing.B) {
	tuneGC()
	fset, loaded, err := loadPackages([]string{"repro/..."})
	if err != nil {
		b.Fatal(err)
	}
	var pkgs, files int
	for _, lp := range loaded {
		pkgs++
		files += len(lp.files)
	}
	b.Logf("analyzing %d packages, %d files", pkgs, files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, _, err := analyzePackages(fset, loaded, analysis.NewFactStore())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo is expected lint-clean, got %d diagnostics", len(diags))
		}
	}
}

// TestRepoLintClean is the repository gate and the lock-order
// regression pin: the full suite — lockorder's global ordering graph
// included — over every package must report nothing. A new Lock()
// added against the established order in sched/transit/supervise turns
// this red before it can deadlock a campaign.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	fset, loaded, err := loadPackages([]string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err := analyzePackages(fset, loaded, analysis.NewFactStore())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.posn(), d.Analyzer, d.Message)
		if strings.Contains(d.Message, "lock order inversion") {
			t.Error("a lock order inversion crept into the repo: restore the established acquisition order rather than suppressing this")
		}
	}
}
