package main

import (
	"testing"

	"repro/internal/lint/analysis"
)

// BenchmarkWorkflowlintRepo measures a full standalone analysis pass —
// all eight analyzers, facts, and the call graph — over every package
// in this repository. Loading (go list, parsing, type-checking) happens
// once outside the timed loop; the benchmark isolates the analysis
// cost, which is what grows as analyzers are added.
func BenchmarkWorkflowlintRepo(b *testing.B) {
	fset, loaded, err := loadPackages([]string{"repro/..."})
	if err != nil {
		b.Fatal(err)
	}
	var pkgs, files int
	for _, lp := range loaded {
		pkgs++
		files += len(lp.files)
	}
	b.Logf("analyzing %d packages, %d files", pkgs, files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := analyzePackages(fset, loaded, analysis.NewFactStore())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo is expected lint-clean, got %d diagnostics", len(diags))
		}
	}
}
