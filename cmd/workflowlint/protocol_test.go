package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureFiles is a minimal four-package module exercising three
// cross-package fact chains: app -> pipeline -> {mpi, gio} for
// mpicollective and errflow, plus pipeline's map-iteration taint
// (dettaint summary fact) flowing into gio's product sink from app.
// The packages import nothing from the standard library so the
// fresh-GOCACHE vet runs stay cheap.
var fixtureFiles = map[string]string{
	"go.mod": "module lintfixture\n\ngo 1.22\n",
	"mpi/mpi.go": `// Package mpi is a no-op stand-in for the repository's rank mesh —
// just enough surface for the analyzers' fact computation.
package mpi

type Comm struct{ rank, size int }

func (c *Comm) Rank() int                 { return c.rank }
func (c *Comm) Size() int                 { return c.size }
func (c *Comm) Barrier()                  {}
func (c *Comm) AllReduceSumInt(v int) int { return v * c.size }
`,
	"gio/gio.go": `package gio

type writeError struct{}

func (writeError) Error() string { return "write failed" }

// WriteFile is an errflow root: exported, Write-prefixed, in a package
// named gio, returning error.
func WriteFile(path string, data []byte) error {
	if path == "" {
		return writeError{}
	}
	_ = data
	return nil
}

// WriteInts is a dettaint product sink: exported, Write-prefixed, in a
// package named gio.
func WriteInts(path string, vals []int) error {
	if path == "" {
		return writeError{}
	}
	_ = vals
	return nil
}
`,
	"pipeline/pipeline.go": `package pipeline

import (
	"lintfixture/gio"
	"lintfixture/mpi"
)

// SyncAll reaches a collective one call deep: callers inherit the
// CallsCollective fact.
func SyncAll(c *mpi.Comm) { c.Barrier() }

// Save propagates gio.WriteFile's write error: callers inherit the
// WriteErrorSource fact.
func Save(path string) error { return gio.WriteFile(path, nil) }

// Keys collects map keys in iteration order: the result carries
// dettaint's map-iteration taint, exported as a summary fact that
// callers in other packages compose at their own sink sites.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	"app/app.go": appClean,
}

const appClean = `package app

import (
	"lintfixture/mpi"
	"lintfixture/pipeline"
)

func Run(c *mpi.Comm) error {
	pipeline.SyncAll(c)
	return pipeline.Save("out")
}
`

// appViolated introduces one mpicollective, one errflow, and one
// dettaint violation, each only detectable through facts imported from
// package pipeline: the rank-gated collective and the dropped write
// error ride SyncAll's and Save's facts; the map-iteration taint rides
// Keys's summary fact into gio.WriteInts's argument. WriteInts's own
// error is returned, so no second errflow finding appears.
const appViolated = `package app

import (
	"lintfixture/gio"
	"lintfixture/mpi"
	"lintfixture/pipeline"
)

func Run(c *mpi.Comm) error {
	if c.Rank() == 0 {
		pipeline.SyncAll(c)
	}
	pipeline.Save("out")
	m := map[int]int{1: 1, 2: 2}
	return gio.WriteInts("out", pipeline.Keys(m))
}
`

// buildTool compiles the workflowlint binary into dir and returns its
// path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	tool := filepath.Join(dir, "workflowlint")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building workflowlint: %v\n%s", err, out)
	}
	return tool
}

// writeFixture materializes fixtureFiles under dir.
func writeFixture(t *testing.T, dir string) {
	t.Helper()
	for name, content := range fixtureFiles {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// envWith returns the current environment with key forced to val.
func envWith(env []string, key, val string) []string {
	var out []string
	prefix := key + "="
	for _, kv := range env {
		if !strings.HasPrefix(kv, prefix) {
			out = append(out, kv)
		}
	}
	return append(out, prefix+val)
}

// diagLine matches the tool's human-readable diagnostic format.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): ([a-z]+): (.+)$`)

// normalizeDiags reduces diagnostics to a sorted, mode-independent form:
// base filename, line, analyzer, message. (Columns and directory
// prefixes differ between go vet's cwd-relative paths and the
// standalone loader's absolute ones.)
func normalizeDiags(t *testing.T, lines []string) []string {
	t.Helper()
	var out []string
	for _, l := range lines {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(l))
		if m == nil {
			continue
		}
		out = append(out, fmt.Sprintf("%s:%s: %s: %s", filepath.Base(m[1]), m[2], m[4], m[5]))
	}
	sort.Strings(out)
	return out
}

// TestVetProtocolCaching drives the full unit-checker protocol against
// a module whose leaf package violates mpicollective, errflow, and
// dettaint in ways only visible through facts from its dependencies. cmd/go
// consults the vet action cache only for VetxOnly (dependency) actions
// — named packages always re-execute — so the test names only the leaf:
// the first run executes all four packages and caches the three
// dependencies' vetx files; the second run executes exactly one (the
// leaf) and must still report the identical cross-package diagnostics,
// proving the facts were read back from the cached vetx files rather
// than recomputed. Finally the standalone mode is run over the same
// module and its diagnostics must match the vet mode's exactly.
func TestVetProtocolCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet with a fresh GOCACHE")
	}

	scratch := t.TempDir()
	tool := buildTool(t, scratch)

	fixture := filepath.Join(scratch, "fixture")
	writeFixture(t, fixture)
	if err := os.WriteFile(filepath.Join(fixture, "app", "app.go"), []byte(appViolated), 0o666); err != nil {
		t.Fatal(err)
	}

	// The vettool is a wrapper that appends every *.cfg argument to a
	// log before delegating, so the test can count which packages were
	// actually executed vs served from go vet's action cache.
	logFile := filepath.Join(scratch, "execs.log")
	wrapper := filepath.Join(scratch, "vetwrap")
	script := fmt.Sprintf(`#!/bin/sh
for a in "$@"; do
	case "$a" in
	*.cfg) echo "$a" >>%q ;;
	esac
done
exec %q "$@"
`, logFile, tool)
	if err := os.WriteFile(wrapper, []byte(script), 0o777); err != nil {
		t.Fatal(err)
	}

	// A private GOCACHE makes the execution counts deterministic: the
	// first run can never be served from a previous test's cache.
	env := envWith(os.Environ(), "GOCACHE", filepath.Join(scratch, "gocache"))
	env = envWith(env, "GOFLAGS", "")

	countExecs := func() int {
		data, err := os.ReadFile(logFile)
		if os.IsNotExist(err) {
			return 0
		}
		if err != nil {
			t.Fatal(err)
		}
		return len(strings.Split(strings.TrimSpace(string(data)), "\n"))
	}
	resetLog := func() {
		if err := os.WriteFile(logFile, nil, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	runVet := func() (string, error) {
		// Name only the leaf: its dependencies become VetxOnly vet
		// actions, the only kind cmd/go serves from the action cache.
		cmd := exec.Command("go", "vet", "-vettool="+wrapper, "./app")
		cmd.Dir = fixture
		cmd.Env = env
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	// Run 1: cold cache. The leaf plus its three dependencies execute,
	// and the diagnostics must name facts from two packages away.
	out, err := runVet()
	if err == nil {
		t.Fatalf("vet run over violated module unexpectedly clean:\n%s", out)
	}
	if got := countExecs(); got != 4 {
		t.Errorf("cold-cache run executed %d packages, want 4\nlog:\n%s", got, readLog(t, logFile))
	}
	for _, want := range []string{
		"SyncAll (reaches Barrier)",
		"propagates write errors from gio.WriteFile",
		"map iteration order reaches gio.WriteInts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing cross-package diagnostic %q:\n%s", want, out)
		}
	}
	run1 := normalizeDiags(t, strings.Split(out, "\n"))

	// Run 2: nothing changed. Only the named leaf re-executes; the
	// dependencies' vetx fact files are served from the action cache,
	// and the cross-package diagnostics must survive unchanged.
	resetLog()
	out, err = runVet()
	if err == nil {
		t.Fatalf("cached vet run unexpectedly clean:\n%s", out)
	}
	if got := countExecs(); got != 1 {
		t.Errorf("warm-cache run executed %d packages, want 1 (dependencies not served from vet action cache)\nlog:\n%s", got, readLog(t, logFile))
	}
	run2 := normalizeDiags(t, strings.Split(out, "\n"))
	if fmt.Sprint(run1) != fmt.Sprint(run2) {
		t.Errorf("diagnostics changed when facts came from the cache:\ncold: %v\nwarm: %v", run1, run2)
	}

	// Parity: the standalone driver over the same module must report
	// the identical diagnostics.
	vetDiags := run2

	cmd := exec.Command(tool, "./...")
	cmd.Dir = fixture
	cmd.Env = env
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err == nil {
		t.Fatalf("standalone run over violated module unexpectedly clean:\n%s", buf.String())
	}
	standaloneDiags := normalizeDiags(t, strings.Split(buf.String(), "\n"))

	if len(vetDiags) == 0 {
		t.Fatal("no diagnostics parsed from vet output")
	}
	if fmt.Sprint(vetDiags) != fmt.Sprint(standaloneDiags) {
		t.Errorf("vet and standalone modes disagree:\nvet:        %v\nstandalone: %v", vetDiags, standaloneDiags)
	}
}

// TestJSONOutput checks the -json contract on the same fixture: one
// JSON object per line with file, line, analyzer, and message fields.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	scratch := t.TempDir()
	tool := buildTool(t, scratch)
	fixture := filepath.Join(scratch, "fixture")
	writeFixture(t, fixture)
	if err := os.WriteFile(filepath.Join(fixture, "app", "app.go"), []byte(appViolated), 0o666); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(tool, "-json", "./...")
	cmd.Dir = fixture
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("expected diagnostics, got clean run\nstderr: %s", stderr.String())
	}

	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON diagnostics, got %d:\n%s", len(lines), stdout.String())
	}
	analyzers := map[string]bool{}
	for _, line := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line is not a JSON object: %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic missing fields: %q", line)
		}
		if filepath.Base(d.File) != "app.go" {
			t.Errorf("diagnostic in %s, want app.go", d.File)
		}
		analyzers[d.Analyzer] = true
	}
	if !analyzers["mpicollective"] || !analyzers["errflow"] || !analyzers["dettaint"] {
		t.Errorf("want one mpicollective, one errflow, and one dettaint diagnostic, got %v", analyzers)
	}
}

func readLog(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return string(data)
}

// lockFixtureFiles is a two-package module whose AB/BA lock-order
// inversion is split across the package boundary: package store
// establishes Mu→Aux and exports both the edge (LockEdges package
// fact) and Touch's acquisition set (LockSummary object fact); package
// app contradicts the order once directly and once through a call made
// while holding its own mutex. Every inversion is invisible to a
// single-package analysis — the facts are the only carrier.
var lockFixtureFiles = map[string]string{
	"go.mod": "module lockfixture\n\ngo 1.22\n",
	"store/store.go": `package store

import "sync"

var Mu sync.Mutex
var Aux sync.Mutex

// Establish pins the canonical order: Mu before Aux.
func Establish() {
	Mu.Lock()
	Aux.Lock()
	Aux.Unlock()
	Mu.Unlock()
}

// Touch acquires Mu: callers holding another lock inherit the edge.
func Touch() {
	Mu.Lock()
	Mu.Unlock()
}
`,
	"app/app.go": `package app

import (
	"sync"

	"lockfixture/store"
)

var Gate sync.Mutex

// Inverted takes Aux before Mu — the reverse of store.Establish's
// order, visible only through store's exported LockEdges.
func Inverted() {
	store.Aux.Lock()
	store.Mu.Lock()
	store.Mu.Unlock()
	store.Aux.Unlock()
}

// Direct pins store.Mu before Gate.
func Direct() {
	store.Mu.Lock()
	Gate.Lock()
	Gate.Unlock()
	store.Mu.Unlock()
}

// HoldAndCall acquires store.Mu through store.Touch while holding
// Gate — the reverse of Direct's order, visible only through Touch's
// exported LockSummary.
func HoldAndCall() {
	Gate.Lock()
	store.Touch()
	Gate.Unlock()
}
`,
}

// TestLockOrderParity seeds the cross-package AB/BA inversions and
// requires both driver modes to find them: the vet protocol (facts ride
// vetx files) and the standalone loader (facts stay in memory) must
// report identical diagnostics, each including the lock-order
// inversions.
func TestLockOrderParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet with a fresh GOCACHE")
	}

	scratch := t.TempDir()
	tool := buildTool(t, scratch)
	fixture := filepath.Join(scratch, "lockfixture")
	for name, content := range lockFixtureFiles {
		path := filepath.Join(fixture, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	env := envWith(os.Environ(), "GOCACHE", filepath.Join(scratch, "gocache"))
	env = envWith(env, "GOFLAGS", "")

	// Vet mode, naming only the leaf: store is a VetxOnly dependency, so
	// its LockEdges and LockSummary facts reach app exclusively through
	// the serialized vetx file.
	vetCmd := exec.Command("go", "vet", "-vettool="+tool, "./app")
	vetCmd.Dir = fixture
	vetCmd.Env = env
	var vetBuf bytes.Buffer
	vetCmd.Stdout = &vetBuf
	vetCmd.Stderr = &vetBuf
	if err := vetCmd.Run(); err == nil {
		t.Fatalf("vet run over inverted module unexpectedly clean:\n%s", vetBuf.String())
	}
	vetOut := vetBuf.String()
	if n := strings.Count(vetOut, "lock order inversion"); n < 2 {
		t.Errorf("vet mode found %d lock order inversions, want >= 2 (direct + via-call):\n%s", n, vetOut)
	}

	// Standalone over the same module.
	saCmd := exec.Command(tool, "./...")
	saCmd.Dir = fixture
	saCmd.Env = env
	var saBuf bytes.Buffer
	saCmd.Stdout = &saBuf
	saCmd.Stderr = &saBuf
	if err := saCmd.Run(); err == nil {
		t.Fatalf("standalone run over inverted module unexpectedly clean:\n%s", saBuf.String())
	}
	saOut := saBuf.String()
	if n := strings.Count(saOut, "lock order inversion"); n < 2 {
		t.Errorf("standalone mode found %d lock order inversions, want >= 2:\n%s", n, saOut)
	}

	vetDiags := normalizeDiags(t, strings.Split(vetOut, "\n"))
	saDiags := normalizeDiags(t, strings.Split(saOut, "\n"))
	if len(vetDiags) == 0 {
		t.Fatal("no diagnostics parsed from vet output")
	}
	if fmt.Sprint(vetDiags) != fmt.Sprint(saDiags) {
		t.Errorf("vet and standalone modes disagree on lockorder:\nvet:        %v\nstandalone: %v", vetDiags, saDiags)
	}
}

// fixFixtureFiles holds one fixable sentinelwrap violation (%v on an
// error) and one fixable closecheck violation (defer f.Close() in a
// function with a named error result).
var fixFixtureFiles = map[string]string{
	"go.mod": "module fixfixture\n\ngo 1.22\n",
	// Package blob deliberately is NOT one of atomicwrite's product
	// packages: every diagnostic here must carry a fix, so -fix exits 0.
	"blob/blob.go": `package blob

import (
	"fmt"
	"os"
)

func Wrap(err error) error {
	return fmt.Errorf("read block: %v", err)
}

func WriteAll(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}
`,
}

// TestFixRoundTrip drives the whole -fix pipeline end to end: the
// drift gate (-fix -diff) reports pending fixes with exit 2, -fix
// rewrites the tree and exits 0 because every finding was fixable, the
// re-lint is clean, and the drift gate then passes with empty output.
func TestFixRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	scratch := t.TempDir()
	tool := buildTool(t, scratch)
	fixture := filepath.Join(scratch, "fixfixture")
	for name, content := range fixFixtureFiles {
		path := filepath.Join(fixture, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	run := func(args ...string) (string, string, int) {
		cmd := exec.Command(tool, args...)
		cmd.Dir = fixture
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running %v: %v", args, err)
		}
		return stdout.String(), stderr.String(), code
	}

	// Drift gate on a dirty tree: exit 2, diffs on stdout, no writes.
	stdout, stderr, code := run("-fix", "-diff", "./...")
	if code != 2 {
		t.Fatalf("-fix -diff on dirty tree: exit %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "+\treturn fmt.Errorf(\"read block: %w\", err)") {
		t.Errorf("-fix -diff missing the %%w rewrite:\n%s", stdout)
	}
	if !strings.Contains(stdout, "cerr := f.Close()") {
		t.Errorf("-fix -diff missing the close-capture rewrite:\n%s", stdout)
	}
	src, err := os.ReadFile(filepath.Join(fixture, "blob", "blob.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != fixFixtureFiles["blob/blob.go"] {
		t.Fatal("-fix -diff modified the source tree; it must be read-only")
	}

	// Apply: everything here is fixable, so nothing remains to report.
	_, stderr, code = run("-fix", "./...")
	if code != 0 {
		t.Fatalf("-fix: exit %d, want 0 (all findings fixable)\nstderr: %s", code, stderr)
	}

	// Round trip: the rewritten tree lints clean...
	_, stderr, code = run("./...")
	if code != 0 {
		t.Fatalf("re-lint after -fix: exit %d, want 0\nstderr: %s", code, stderr)
	}
	// ...and the fixed file still compiles.
	buildCmd := exec.Command("go", "build", "./...")
	buildCmd.Dir = fixture
	if out, err := buildCmd.CombinedOutput(); err != nil {
		t.Fatalf("fixed tree does not build: %v\n%s", err, out)
	}

	// Drift gate on the clean tree: exit 0, empty output.
	stdout, stderr, code = run("-fix", "-diff", "./...")
	if code != 0 || stdout != "" {
		t.Fatalf("-fix -diff on clean tree: exit %d, stdout %q, want 0 and empty\nstderr: %s", code, stdout, stderr)
	}
}

// TestSarifOutput runs -sarif over the violated fixture: one complete
// SARIF 2.1.0 log on stdout, exit 2, one result per diagnostic with
// ruleIds resolving into the rule table, byte-identical across runs.
func TestSarifOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	scratch := t.TempDir()
	tool := buildTool(t, scratch)
	fixture := filepath.Join(scratch, "fixture")
	writeFixture(t, fixture)
	if err := os.WriteFile(filepath.Join(fixture, "app", "app.go"), []byte(appViolated), 0o666); err != nil {
		t.Fatal(err)
	}

	runSarif := func() string {
		cmd := exec.Command(tool, "-sarif", "./...")
		cmd.Dir = fixture
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("-sarif over violated fixture: err %v, want exit 2\nstderr: %s", err, stderr.String())
		}
		return stdout.String()
	}

	first := runSarif()
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(first), &log); err != nil {
		t.Fatalf("-sarif output is not one JSON document: %v\n%s", err, first)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "workflowlint" {
		t.Errorf("driver name %q, want workflowlint", run.Tool.Driver.Name)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3 (mpicollective, errflow, dettaint):\n%s", len(run.Results), first)
	}
	seen := map[string]bool{}
	for _, r := range run.Results {
		seen[r.RuleID] = true
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %s has ruleIndex %d outside the rule table", r.RuleID, r.RuleIndex)
		} else if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %s points at rule %s", r.RuleID, got)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %s missing a physical location", r.RuleID)
		}
		if filepath.Base(r.Locations[0].PhysicalLocation.ArtifactLocation.URI) != "app.go" {
			t.Errorf("result %s located in %s, want app.go", r.RuleID, r.Locations[0].PhysicalLocation.ArtifactLocation.URI)
		}
	}
	for _, want := range []string{"mpicollective", "errflow", "dettaint"} {
		if !seen[want] {
			t.Errorf("no %s result in SARIF output; got %v", want, seen)
		}
	}

	if second := runSarif(); first != second {
		t.Errorf("-sarif output differs between identical runs:\nrun 1:\n%s\nrun 2:\n%s", first, second)
	}
}

// TestListFlag checks `workflowlint -list`: the full suite, one line
// per analyzer with a doc string, sorted by name, exit 0.
func TestListFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	scratch := t.TempDir()
	tool := buildTool(t, scratch)

	cmd := exec.Command(tool, "-list")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("-list: %v\nstderr: %s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 12 {
		t.Fatalf("-list printed %d lines, want 12 (one per analyzer):\n%s", len(lines), stdout.String())
	}
	var names []string
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 2 {
			t.Errorf("-list line lacks a doc string: %q", l)
			continue
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output not sorted by analyzer name: %v", names)
	}
	for _, want := range []string{"dettaint", "allocbound", "sharecapture", "errflow", "lockorder", "nondeterminism"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list missing analyzer %q:\n%s", want, stdout.String())
		}
	}
}

// TestJSONDeterministic runs -json twice over the violated fixture and
// requires byte-identical output: the canonical sort order, not
// scheduling or map iteration, decides the stream.
func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	scratch := t.TempDir()
	tool := buildTool(t, scratch)
	fixture := filepath.Join(scratch, "fixture")
	writeFixture(t, fixture)
	if err := os.WriteFile(filepath.Join(fixture, "app", "app.go"), []byte(appViolated), 0o666); err != nil {
		t.Fatal(err)
	}

	runJSON := func() string {
		cmd := exec.Command(tool, "-json", "./...")
		cmd.Dir = fixture
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = io.Discard
		if err := cmd.Run(); err == nil {
			t.Fatal("expected diagnostics, got clean run")
		}
		return stdout.String()
	}
	first := runJSON()
	if first == "" {
		t.Fatal("no JSON output")
	}
	if second := runJSON(); first != second {
		t.Errorf("-json output differs between identical runs:\nrun 1:\n%s\nrun 2:\n%s", first, second)
	}
}
