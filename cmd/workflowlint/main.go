// Command workflowlint is the multichecker for the repository's custom
// static analyzers (internal/lint): nondeterminism, atomicwrite,
// closecheck, lockdiscipline, sentinelwrap, mpicollective,
// goroutineleak, errflow — the workflow invariants behind bit-identical
// restarts, crash-consistent products, and the deadlock-free rank mesh,
// machine-checked. The last three are interprocedural: they compute
// facts over the call graph that cross package boundaries.
//
// Two modes:
//
//	workflowlint ./...              # standalone: load, check, report
//	go vet -vettool=workflowlint pkgs   # vet tool protocol (CI gate)
//
// The standalone mode shells out to `go list -deps -export` for package
// facts and export data, walks the packages dependency-first (the order
// `go list -deps` emits), and carries analyzer facts across packages in
// memory; the vet mode implements cmd/go's unit-checker protocol
// (-V=full, -flags, a JSON *.cfg argument) and serializes the fact store
// into the VetxOutput file, so cross-package facts survive go vet's
// action cache. Both use only the standard library: the environment is
// hermetic, so this driver and internal/lint/analysis stand in for
// golang.org/x/tools/go/analysis.
//
// With -json each diagnostic is one JSON object per line (file, line,
// col, analyzer, message) — the shape CI annotation tooling consumes.
//
// Exit status: 0 clean, 1 internal error, 2 diagnostics reported.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	// The vet tool protocol probes -V=full before anything else; answer
	// it ahead of normal flag parsing.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-V" || arg == "--V" {
			printVersion()
			return
		}
	}

	flagsJSON := flag.Bool("flags", false, "print analyzer flags as JSON (vet tool protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: workflowlint [-json] packages...\n   or: go vet -vettool=$(command -v workflowlint) packages...\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *flagsJSON {
		// cmd/go queries the tool's flags; we keep none beyond -json.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON, one object per line"}]`)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *jsonOut))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion answers cmd/go's toolID probe. The content hash of the
// binary itself is the build ID, so editing an analyzer and rebuilding
// invalidates go vet's action cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:24]
		}
	}
	fmt.Printf("workflowlint version devel buildID=%s\n", id)
}

// diagnostic is one rendered finding, shared by both modes.
type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d diagnostic) posn() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// runPackage applies the given analyzers (plus Requires) to one loaded
// package, threading facts through store.
func runPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *analysis.FactStore) ([]diagnostic, error) {
	var out []diagnostic
	base := &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	err := analysis.Execute(analyzers, base, store, func(a *analysis.Analyzer, d analysis.Diagnostic) {
		posn := fset.Position(d.Pos)
		out = append(out, diagnostic{
			File:     posn.Filename,
			Line:     posn.Line,
			Col:      posn.Column,
			Analyzer: a.Name,
			Message:  d.Message,
		})
	})
	return out, err
}

// report prints diagnostics and returns the exit status. JSON mode emits
// one object per line on stdout (NDJSON, the CI-annotation contract);
// the default renders human-readable lines on stderr.
func report(diags []diagnostic, jsonOut bool) int {
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
				return 1
			}
		}
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.posn(), d.Analyzer, d.Message)
	}
	return 2
}

// --- standalone mode ---

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// loadedPkg is one package parsed and type-checked from source.
type loadedPkg struct {
	meta    listPkg
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	depOnly bool
}

// loadPackages resolves patterns via `go list -deps -export` and
// type-checks every non-stdlib package from source, dependencies first
// (go list already emits them in dependency order). Stdlib packages
// contribute export data only: no workflowlint fact roots live there,
// so they are never analyzed.
func loadPackages(patterns []string) (*token.FileSet, []*loadedPkg, error) {
	argv := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", argv...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %w", err)
	}
	exportOf := map[string]string{}
	var metas []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if p.Export != "" {
			exportOf[p.ImportPath] = p.Export
		}
		if !p.Standard {
			metas = append(metas, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportOf[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var loaded []*loadedPkg
	for _, p := range metas {
		var files []*ast.File
		var parseErr error
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				parseErr = err
				break
			}
			files = append(files, f)
		}
		if parseErr != nil {
			return nil, nil, parseErr
		}
		if len(files) == 0 {
			continue
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		loaded = append(loaded, &loadedPkg{meta: p, files: files, pkg: pkg, info: info, depOnly: p.DepOnly})
	}
	return fset, loaded, nil
}

// analyzePackages runs the suite over loaded packages with one shared
// fact store: dependency-only packages get the fact-producing analyzers
// (their diagnostics are their owners' business when listed as
// targets), targets get the full suite.
func analyzePackages(fset *token.FileSet, loaded []*loadedPkg, store *analysis.FactStore) ([]diagnostic, error) {
	all := lint.Analyzers()
	factOnly := analysis.FactProducers(all)
	var diags []diagnostic
	for _, lp := range loaded {
		analyzers := all
		if lp.depOnly {
			analyzers = factOnly
		}
		ds, err := runPackage(analyzers, fset, lp.files, lp.pkg, lp.info, store)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.meta.ImportPath, err)
		}
		if !lp.depOnly {
			diags = append(diags, ds...)
		}
	}
	return diags, nil
}

func runStandalone(patterns []string, jsonOut bool) int {
	fset, loaded, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	diags, err := analyzePackages(fset, loaded, analysis.NewFactStore())
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	return report(diags, jsonOut)
}
