// Command workflowlint is the multichecker for the repository's custom
// static analyzers (internal/lint): nondeterminism, atomicwrite,
// closecheck, lockdiscipline, sentinelwrap — the workflow invariants
// behind bit-identical restarts, crash-consistent products, and the
// deadlock-free rank mesh, machine-checked.
//
// Two modes:
//
//	workflowlint ./...              # standalone: load, check, report
//	go vet -vettool=workflowlint pkgs   # vet tool protocol (CI gate)
//
// The standalone mode shells out to `go list -deps -export` for package
// facts and export data, then type-checks each target package from
// source; the vet mode implements cmd/go's unit-checker protocol
// (-V=full, -flags, a JSON *.cfg argument, VetxOutput). Both use only
// the standard library: the environment is hermetic, so this driver and
// internal/lint/analysis stand in for golang.org/x/tools/go/analysis.
//
// Exit status: 0 clean, 1 internal error, 2 diagnostics reported.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	// The vet tool protocol probes -V=full before anything else; answer
	// it ahead of normal flag parsing.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-V" || arg == "--V" {
			printVersion()
			return
		}
	}

	flagsJSON := flag.Bool("flags", false, "print analyzer flags as JSON (vet tool protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: workflowlint [-json] packages...\n   or: go vet -vettool=$(command -v workflowlint) packages...\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *flagsJSON {
		// cmd/go queries the tool's flags; we keep none beyond -json.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON"}]`)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *jsonOut))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion answers cmd/go's toolID probe. The content hash of the
// binary itself is the build ID, so editing an analyzer and rebuilding
// invalidates go vet's action cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:24]
		}
	}
	fmt.Printf("workflowlint version devel buildID=%s\n", id)
}

// diagnostic is one rendered finding, shared by both modes.
type diagnostic struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// runPackage applies every analyzer to one loaded package.
func runPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []diagnostic {
	var out []diagnostic
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, diagnostic{
					Analyzer: a.Name,
					Posn:     fset.Position(d.Pos).String(),
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %s: %v\n", a.Name, err)
		}
	}
	return out
}

// report prints diagnostics and returns the exit status.
func report(diags []diagnostic, jsonOut bool) int {
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(diags)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
	}
	return 2
}

// --- standalone mode ---

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

func runStandalone(patterns []string, jsonOut bool) int {
	argv := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", argv...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: go list: %v\n", err)
		return 1
	}
	exportOf := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: parsing go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exportOf[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportOf[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var diags []diagnostic
	status := 0
	for _, p := range targets {
		var files []*ast.File
		failed := false
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
				failed = true
				break
			}
			files = append(files, f)
		}
		if failed || len(files) == 0 {
			if failed {
				status = 1
			}
			continue
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: type-checking %s: %v\n", p.ImportPath, err)
			status = 1
			continue
		}
		diags = append(diags, runPackage(fset, files, pkg, info)...)
	}
	if rc := report(diags, jsonOut); rc != 0 {
		return rc
	}
	return status
}
