// Command workflowlint is the multichecker for the repository's custom
// static analyzers (internal/lint): nondeterminism, atomicwrite,
// closecheck, lockdiscipline, sentinelwrap, mpicollective,
// goroutineleak, errflow, lockorder, dettaint, allocbound,
// sharecapture — the workflow invariants behind bit-identical
// restarts, crash-consistent products, and the deadlock-free rank
// mesh, machine-checked. Several are interprocedural: they compute
// facts over the call graph that cross package boundaries (lockorder
// additionally publishes the package's lock-order edges as a
// package-level fact, so AB/BA inversions split across packages are
// caught; dettaint and allocbound carry per-function taint summaries
// the same way). Run `workflowlint -list` for the full table.
//
// Two modes:
//
//	workflowlint ./...              # standalone: load, check, report
//	go vet -vettool=workflowlint pkgs   # vet tool protocol (CI gate)
//
// The standalone mode shells out to `go list -deps -export` for package
// facts and export data, walks the packages dependency-first (the order
// `go list -deps` emits), and carries analyzer facts across packages in
// memory; the vet mode implements cmd/go's unit-checker protocol
// (-V=full, -flags, a JSON *.cfg argument) and serializes the fact store
// into the VetxOutput file, so cross-package facts survive go vet's
// action cache. Both use only the standard library: the environment is
// hermetic, so this driver and internal/lint/analysis stand in for
// golang.org/x/tools/go/analysis.
//
// With -json each diagnostic is one JSON object per line (file, line,
// col, analyzer, message, fixable) — the shape CI annotation tooling
// consumes. With -sarif the diagnostics render instead as one SARIF
// 2.1.0 log on stdout — the interchange format code-scanning UIs
// ingest — with one rule per analyzer and one result per finding.
// Output order is deterministic in every mode: diagnostics sort by
// file, line, column, analyzer, message, so two runs over the same
// tree are byte-identical.
//
// With -fix, suggested fixes (sentinelwrap's %v→%w rewrite,
// closecheck's named-return close capture) are applied to the source
// in place; only diagnostics without a fix are then reported. With
// -fix -diff nothing is written: unified diffs go to stdout and the
// exit status says whether the tree is fix-clean — the CI drift gate
// is `workflowlint -fix -diff ./...` exiting 0.
//
// Exit status: 0 clean, 1 internal error, 2 diagnostics reported (or,
// under -fix -diff, fixes pending).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	// The vet tool protocol probes -V=full before anything else; answer
	// it ahead of normal flag parsing.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-V" || arg == "--V" {
			printVersion()
			return
		}
	}

	flagsJSON := flag.Bool("flags", false, "print analyzer flags as JSON (vet tool protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON, one object per line")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as one SARIF 2.1.0 log on stdout")
	list := flag.Bool("list", false, "list the analyzers with one-line docs and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source in place")
	diff := flag.Bool("diff", false, "with -fix, print diffs instead of writing files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: workflowlint [-json|-sarif] [-fix [-diff]] packages...\n   or: workflowlint -list\n   or: go vet -vettool=$(command -v workflowlint) packages...\n\nAnalyzers:\n")
		for _, a := range sortedAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *flagsJSON {
		// cmd/go queries the tool's flags and forwards matching command
		// line arguments; declaring fix/diff/sarif here is what lets
		// `go vet -vettool=... -fix` (or -sarif) carry those modes
		// through the vet protocol.
		fmt.Println(`[` +
			`{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON, one object per line"},` +
			`{"Name":"sarif","Bool":true,"Usage":"emit diagnostics as one SARIF 2.1.0 log on stdout"},` +
			`{"Name":"fix","Bool":true,"Usage":"apply suggested fixes to the source in place"},` +
			`{"Name":"diff","Bool":true,"Usage":"with -fix, print diffs instead of writing files"}]`)
		return
	}
	if *list {
		for _, a := range sortedAnalyzers() {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "workflowlint: -json and -sarif are mutually exclusive")
		os.Exit(1)
	}

	tuneGC()
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], *jsonOut, *sarifOut, *fix, *diff))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *jsonOut, *sarifOut, *fix, *diff))
}

// tuneGC relaxes the collector for the standalone driver. A whole-repo
// pass retains every package's AST and type information for its
// lifetime, so at the default GOGC=100 each collection re-scans that
// large live heap for little reclaim — roughly a third of the wall
// time on this repository. The process is a one-shot batch job, so
// trading peak RSS for throughput is the right default (the same
// tuning linkers and other one-shot Go tools apply). An explicit GOGC
// in the environment wins.
func tuneGC() {
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}
}

// sortedAnalyzers returns the suite ordered by name — the order -list
// and usage print, independent of registration order.
func sortedAnalyzers() []*analysis.Analyzer {
	all := append([]*analysis.Analyzer(nil), lint.Analyzers()...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion answers cmd/go's toolID probe. The content hash of the
// binary itself is the build ID, so editing an analyzer and rebuilding
// invalidates go vet's action cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:24]
		}
	}
	fmt.Printf("workflowlint version devel buildID=%s\n", id)
}

// diagnostic is one rendered finding, shared by both modes.
type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func (d diagnostic) posn() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// runPackage applies the given analyzers (plus Requires) to one loaded
// package, threading facts through store. The raw analysis.Diagnostic
// slice rides along so -fix can reach the suggested edits.
func runPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *analysis.FactStore) ([]diagnostic, []analysis.Diagnostic, error) {
	var out []diagnostic
	var raw []analysis.Diagnostic
	base := &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	err := analysis.Execute(analyzers, base, store, func(a *analysis.Analyzer, d analysis.Diagnostic) {
		posn := fset.Position(d.Pos)
		out = append(out, diagnostic{
			File:     posn.Filename,
			Line:     posn.Line,
			Col:      posn.Column,
			Analyzer: a.Name,
			Message:  d.Message,
			Fixable:  len(d.SuggestedFixes) > 0,
		})
		raw = append(raw, d)
	})
	return out, raw, err
}

// sortDiagnostics puts findings into the canonical reporting order:
// file, line, column, analyzer, message. Analyzer scheduling order and
// map iteration inside analyzers must not leak into the output — CI
// diffs two runs byte for byte.
func sortDiagnostics(diags []diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// report prints diagnostics and returns the exit status. JSON mode emits
// one object per line on stdout (NDJSON, the CI-annotation contract);
// SARIF mode emits one complete 2.1.0 log on stdout (empty results
// array included, so a clean run still uploads a valid report); the
// default renders human-readable lines on stderr. All orders are
// canonical (sortDiagnostics).
func report(diags []diagnostic, jsonOut, sarifOut bool) int {
	sortDiagnostics(diags)
	if sarifOut {
		data, err := sarifReport(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		os.Stdout.Write(data)
		if len(diags) == 0 {
			return 0
		}
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
				return 1
			}
		}
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.posn(), d.Analyzer, d.Message)
	}
	return 2
}

// runFixes applies (or, with diff, previews) the suggested fixes in raw.
// It returns the number of files that would change. In diff mode
// unified diffs go to stdout and nothing is written; otherwise files
// are rewritten in place.
func runFixes(fset *token.FileSet, raw []analysis.Diagnostic, diff bool) (int, error) {
	fixed, err := analysis.ApplyFixes(fset, raw, os.ReadFile)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(fixed))
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if diff {
			old, err := os.ReadFile(name)
			if err != nil {
				return 0, err
			}
			fmt.Print(analysis.Diff(name, old, fixed[name]))
			continue
		}
		st, err := os.Stat(name)
		if err != nil {
			return 0, err
		}
		// Rewriting a source file in place is the entire point of -fix;
		// source files are not crash-committed data products.
		//lint:allow atomicwrite -fix rewrites source files, not data products
		if err := os.WriteFile(name, fixed[name], st.Mode().Perm()); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "workflowlint: fixed %s\n", name)
	}
	return len(names), nil
}

// unfixable filters to the diagnostics that carry no suggested fix —
// after -fix has applied the rest, these are what remains for a human.
func unfixable(diags []diagnostic) []diagnostic {
	var out []diagnostic
	for _, d := range diags {
		if !d.Fixable {
			out = append(out, d)
		}
	}
	return out
}

// --- standalone mode ---

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// loadedPkg is one package parsed and type-checked from source.
type loadedPkg struct {
	meta    listPkg
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	depOnly bool
}

// loadPackages resolves patterns via `go list -deps -export` and
// type-checks every non-stdlib package from source, dependencies first
// (go list already emits them in dependency order). Stdlib packages
// contribute export data only: no workflowlint fact roots live there,
// so they are never analyzed.
func loadPackages(patterns []string) (*token.FileSet, []*loadedPkg, error) {
	argv := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", argv...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %w", err)
	}
	exportOf := map[string]string{}
	var metas []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if p.Export != "" {
			exportOf[p.ImportPath] = p.Export
		}
		if !p.Standard {
			metas = append(metas, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportOf[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var loaded []*loadedPkg
	for _, p := range metas {
		var files []*ast.File
		var parseErr error
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				parseErr = err
				break
			}
			files = append(files, f)
		}
		if parseErr != nil {
			return nil, nil, parseErr
		}
		if len(files) == 0 {
			continue
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		loaded = append(loaded, &loadedPkg{meta: p, files: files, pkg: pkg, info: info, depOnly: p.DepOnly})
	}
	return fset, loaded, nil
}

// analyzePackages runs the suite over loaded packages with one shared
// fact store: dependency-only packages get the fact-producing analyzers
// (their diagnostics are their owners' business when listed as
// targets), targets get the full suite.
func analyzePackages(fset *token.FileSet, loaded []*loadedPkg, store *analysis.FactStore) ([]diagnostic, []analysis.Diagnostic, error) {
	all := lint.Analyzers()
	factOnly := analysis.FactProducers(all)
	var diags []diagnostic
	var raw []analysis.Diagnostic
	for _, lp := range loaded {
		analyzers := all
		if lp.depOnly {
			analyzers = factOnly
		}
		ds, rs, err := runPackage(analyzers, fset, lp.files, lp.pkg, lp.info, store)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", lp.meta.ImportPath, err)
		}
		if !lp.depOnly {
			diags = append(diags, ds...)
			raw = append(raw, rs...)
		}
	}
	return diags, raw, nil
}

func runStandalone(patterns []string, jsonOut, sarifOut, fix, diff bool) int {
	fset, loaded, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	diags, raw, err := analyzePackages(fset, loaded, analysis.NewFactStore())
	if err != nil {
		fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
		return 1
	}
	if fix {
		changed, err := runFixes(fset, raw, diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workflowlint: %v\n", err)
			return 1
		}
		if diff {
			if changed > 0 {
				return 2
			}
			return report(unfixable(diags), jsonOut, sarifOut)
		}
		diags = unfixable(diags)
	}
	return report(diags, jsonOut, sarifOut)
}
