package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sort"

	"repro/internal/lint"
)

// SARIF 2.1.0 output (-sarif): the static-analysis interchange format
// CI dashboards and code-scanning UIs ingest. One run, one tool
// (workflowlint), one rule per analyzer, one result per diagnostic.
// Only the subset of the schema the consumers actually read is
// emitted; the structs below mirror the spec's property names.
//
// Determinism contract: rules sort by analyzer name, results inherit
// the canonical diagnostic order (file, line, column, analyzer,
// message), and encoding/json emits struct fields in declaration
// order — two runs over the same tree are byte-identical, so the
// report itself can be diffed or content-addressed.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules builds the rule table from the analyzer suite, sorted by
// name, and returns it with a name→index lookup for results.
func sarifRules() ([]sarifRule, map[string]int) {
	analyzers := lint.Analyzers()
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstLine(a.Doc)},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		index[r.ID] = i
	}
	return rules, index
}

// sarifReport renders diagnostics as one indented SARIF 2.1.0 log,
// trailing newline included. diags must already be in canonical order
// (sortDiagnostics); a diagnostic from an analyzer outside the suite
// gets RuleIndex -1 rather than being dropped.
func sarifReport(diags []diagnostic) ([]byte, error) {
	rules, index := sarifRules()
	// Findings gate CI: every diagnostic is level "error".
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "workflowlint", Rules: rules}},
			Results: results,
		}},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
