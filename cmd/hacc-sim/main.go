// Command hacc-sim runs the particle-mesh cosmology simulation with
// CosmoTools in-situ analysis, reproducing the paper's simulation-side
// set-up: "The simulation 'input deck' contains all the simulation
// parameters for the main run. It also includes a trigger for CosmoTools
// and a pointer to the CosmoTools configuration file" (§3).
//
// Usage:
//
//	hacc-sim -deck input.deck
//	hacc-sim -np 32 -steps 20 -out ./run    (deckless quick run)
//
// Outputs per analysis step, in the output directory:
//
//	stepNNN.gio        Level 1 snapshot (when snapshot_every triggers)
//	stepNNN.l2.gio     Level 2 (particles of halos above the split)
//	stepNNN.centers    Level 3 halo centers (text)
//	stepNNN.done       marker file the co-scheduling listener watches
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/gio"
	"repro/internal/ic"
	"repro/internal/nbody"
	"repro/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hacc-sim: ")
	var (
		deckPath = flag.String("deck", "", "input deck path (INI; overrides the flags below)")
		np       = flag.Int("np", 32, "particles per dimension (power of two)")
		ng       = flag.Int("ng", 0, "PM grid per dimension (defaults to np)")
		box      = flag.Float64("box", 64, "box side, Mpc/h")
		zInit    = flag.Float64("z-init", 50, "starting redshift")
		zFinal   = flag.Float64("z-final", 0, "final redshift")
		steps    = flag.Int("steps", 20, "time steps")
		seed     = flag.Int64("seed", 1, "initial-conditions seed")
		outDir   = flag.String("out", "hacc-out", "output directory")
		ctConfig = flag.String("cosmotools", "", "CosmoTools config path (empty: built-in defaults)")
		snapshot = flag.Int("snapshot-every", 0, "write Level 1 snapshots every N steps (0: never)")
		analyze  = flag.Int("analyze-every", 0, "run analysis every N steps (0: final step only)")
		renderPx = flag.Int("render", 0, "write a Figure 2-style density projection PNG of the final step at this pixel size (0: off)")
		ckptEvry = flag.Int("checkpoint-every", 0, "write full-precision checkpoints every N steps (0: never)")
		restart  = flag.String("restart-from", "", "resume from a checkpoint file instead of generating initial conditions; the run continues the checkpoint's own schedule and step numbering, bit-identical to an uninterrupted run")
	)
	flag.Var(aliasValue{flag.Lookup("restart-from")}, "restart", "deprecated alias for -restart-from")
	flag.Parse()
	cfg := runConfig{
		NP: *np, NG: *ng, Box: *box, ZInit: *zInit, ZFinal: *zFinal,
		Steps: *steps, Seed: *seed, OutDir: *outDir, CTConfig: *ctConfig,
		SnapshotEvery: *snapshot, AnalyzeEvery: *analyze, RenderPixels: *renderPx,
		CheckpointEvery: *ckptEvry, Restart: *restart,
	}
	if *deckPath != "" {
		if err := cfg.loadDeck(*deckPath); err != nil {
			log.Fatalf("reading deck: %v", err)
		}
	}
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

// aliasValue forwards a deprecated flag name onto its replacement.
type aliasValue struct{ target *flag.Flag }

func (a aliasValue) String() string {
	if a.target == nil {
		return ""
	}
	return a.target.Value.String()
}
func (a aliasValue) Set(v string) error { return a.target.Value.Set(v) }

type runConfig struct {
	NP, NG          int
	Box             float64
	ZInit, ZFinal   float64
	Steps           int
	Seed            int64
	OutDir          string
	CTConfig        string
	SnapshotEvery   int
	AnalyzeEvery    int
	RenderPixels    int
	CheckpointEvery int
	Restart         string
}

// loadDeck reads [simulation] and [cosmotools] sections of an input deck.
func (c *runConfig) loadDeck(path string) error {
	cfg, err := cosmotools.ParseConfigFile(path)
	if err != nil {
		return err
	}
	sim := cfg.Section("simulation")
	setInt := func(dst *int, key string) error {
		if v, ok := sim[key]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("deck %s=%q: %w", key, v, err)
			}
			*dst = n
		}
		return nil
	}
	setFloat := func(dst *float64, key string) error {
		if v, ok := sim[key]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("deck %s=%q: %w", key, v, err)
			}
			*dst = f
		}
		return nil
	}
	for _, step := range []error{
		setInt(&c.NP, "np"), setInt(&c.NG, "ng"), setInt(&c.Steps, "steps"),
		setInt(&c.SnapshotEvery, "snapshot_every"), setInt(&c.AnalyzeEvery, "analyze_every"),
		setFloat(&c.Box, "box"), setFloat(&c.ZInit, "z_init"), setFloat(&c.ZFinal, "z_final"),
	} {
		if step != nil {
			return step
		}
	}
	if v, ok := sim["seed"]; ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("deck seed=%q: %w", v, err)
		}
		c.Seed = n
	}
	if v, ok := sim["output_dir"]; ok {
		c.OutDir = v
	}
	ct := cfg.Section("cosmotools")
	if v, ok := ct["config"]; ok {
		c.CTConfig = v
	}
	if v, ok := ct["enabled"]; ok {
		enabled, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("deck cosmotools enabled=%q: %w", v, err)
		}
		if !enabled {
			c.CTConfig = "-"
		}
	}
	return nil
}

func run(cfg runConfig) error {
	if cfg.NG <= 0 {
		cfg.NG = cfg.NP
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return err
	}
	params := cosmo.Default()
	var sim *nbody.Simulation
	if cfg.Restart != "" {
		var err error
		sim, err = gio.LoadCheckpointFile(cfg.Restart)
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		// Honour the checkpoint's own geometry, cosmology and schedule:
		// the restarted run continues the original integration plan so it
		// is bit-identical to one that never stopped.
		cfg.Box = sim.Box
		cfg.NG = sim.NG
		cfg.Steps = sim.Sched.TotalSteps
		cfg.Seed = sim.Seed
		params = sim.Cosmo
		log.Printf("restarted from %s at z=%.2f, step %d/%d (%d particles, IC seed %d)",
			cfg.Restart, sim.Redshift(), sim.StepIndex, sim.Sched.TotalSteps, sim.P.N(), sim.Seed)
	} else {
		log.Printf("generating %d^3 Zel'dovich ICs in a %.1f Mpc/h box at z=%.1f (seed %d)",
			cfg.NP, cfg.Box, cfg.ZInit, cfg.Seed)
		particles, a0, err := ic.Generate(params, ic.Options{
			NP: cfg.NP, Box: cfg.Box, ZInit: cfg.ZInit, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		sim, err = nbody.NewSimulation(params, cfg.Box, cfg.NG, particles, a0)
		if err != nil {
			return err
		}
		sim.Seed = cfg.Seed
	}
	// NP for particle-mass purposes: on restart, recover it from the
	// checkpointed particle count rather than trusting the flag.
	if cfg.Restart != "" {
		cfg.NP = int(math.Round(math.Cbrt(float64(sim.P.N()))))
	}

	// CosmoTools set-up: register the tools, then configure from the
	// config file, or fall back to defaults scaled to the box (linking
	// length 0.2x the mean inter-particle spacing).
	var manager cosmotools.Manager
	manager.Clock = time.Now // driver process: wall-clock timings are wanted here
	disabled := cfg.CTConfig == "-"
	if !disabled {
		ps := cosmotools.NewPowerSpectrum()
		hf := cosmotools.NewHaloFinder()
		// The optional tools are registered but dormant (schedule never
		// fires) until a config section enables them.
		som := cosmotools.NewSOMass()
		if err := som.SetParameters(map[string]string{"every": "0"}); err != nil {
			return err
		}
		shf := cosmotools.NewSubhaloFinder()
		if err := shf.SetParameters(map[string]string{"every": "0"}); err != nil {
			return err
		}
		hp := cosmotools.NewHaloProperties()
		if err := hp.SetParameters(map[string]string{"every": "0"}); err != nil {
			return err
		}
		for _, alg := range []cosmotools.Algorithm{ps, hf, som, shf, hp} {
			if err := manager.Register(alg); err != nil {
				return err
			}
		}
		if cfg.CTConfig != "" {
			ctCfg, err := cosmotools.ParseConfigFile(cfg.CTConfig)
			if err != nil {
				return fmt.Errorf("cosmotools config: %w", err)
			}
			if err := manager.Configure(ctCfg); err != nil {
				return err
			}
		} else {
			link := 0.2 * cfg.Box / float64(cfg.NP)
			if err := hf.SetParameters(map[string]string{
				"linking_length": fmt.Sprint(link),
				"min_size":       "10",
			}); err != nil {
				return err
			}
			if err := ps.SetParameters(map[string]string{
				"grid": fmt.Sprint(cfg.NG), "bins": "16",
			}); err != nil {
				return err
			}
		}
	}

	mass := params.ParticleMass(cfg.Box, cfg.NP)
	start := time.Now()
	cb := func(step int) error {
		final := step == cfg.Steps
		if cfg.SnapshotEvery > 0 && step%cfg.SnapshotEvery == 0 {
			path := filepath.Join(cfg.OutDir, fmt.Sprintf("step%03d.gio", step))
			if err := gio.WriteFile(path, []gio.Block{{Rank: 0, Particles: sim.P}}); err != nil {
				return err
			}
			log.Printf("step %3d (z=%.2f): wrote Level 1 snapshot %s", step, sim.Redshift(), path)
		}
		if cfg.CheckpointEvery > 0 && step%cfg.CheckpointEvery == 0 {
			path := filepath.Join(cfg.OutDir, fmt.Sprintf("ckpt%03d.bin", step))
			if err := gio.SaveCheckpointFile(path, sim); err != nil {
				return err
			}
			log.Printf("step %3d: wrote checkpoint %s", step, path)
		}
		analyze := final || (cfg.AnalyzeEvery > 0 && step%cfg.AnalyzeEvery == 0)
		if !analyze || disabled {
			return nil
		}
		ctx := cosmotools.NewContext(step, sim.A, cfg.Box, mass, sim.P)
		if err := manager.Execute(ctx); err != nil {
			return err
		}
		return writeProducts(cfg.OutDir, step, ctx)
	}
	var err error
	if cfg.Restart != "" {
		// Continue the checkpoint's pinned schedule: remaining steps only,
		// with absolute step numbering so outputs line up with the
		// original run's.
		log.Printf("resuming %d remaining steps (particle mass %.3g Msun/h)",
			sim.Sched.TotalSteps-sim.StepIndex, mass)
		err = sim.Resume(cb)
	} else {
		aEnd := cosmo.ScaleFactor(cfg.ZFinal)
		log.Printf("evolving to z=%.2f in %d steps (particle mass %.3g Msun/h)", cfg.ZFinal, cfg.Steps, mass)
		err = sim.Run(aEnd, cfg.Steps, cb)
	}
	if err != nil {
		return err
	}
	if cfg.RenderPixels > 0 {
		path := filepath.Join(cfg.OutDir, "final.png")
		var png bytes.Buffer
		if err := render.WritePNG(&png, sim.P, cfg.Box, render.Options{Pixels: cfg.RenderPixels, Axis: 2, Gamma: 0.8}); err != nil {
			return err
		}
		if err := ckpt.WriteFileAtomic(path, png.Bytes()); err != nil {
			return err
		}
		log.Printf("wrote density projection to %s", path)
	}
	log.Printf("run complete in %.1fs", time.Since(start).Seconds())
	return nil
}

// writeProducts lands the analysis outputs plus the listener marker.
func writeProducts(outDir string, step int, ctx *cosmotools.Context) error {
	if l2Any, ok := ctx.Outputs["halofinder/level2"]; ok {
		l2 := l2Any.(*cosmotools.Level2)
		if l2.Particles.N() > 0 {
			path := filepath.Join(outDir, fmt.Sprintf("step%03d.l2.gio", step))
			if err := gio.WriteFile(path, []gio.Block{{Rank: 0, Particles: l2.Particles}}); err != nil {
				return err
			}
			log.Printf("step %3d: wrote Level 2 (%d particles in %d large halos) to %s",
				step, l2.Particles.N(), len(l2.Spans), path)
		}
	}
	if centersAny, ok := ctx.Outputs["halofinder/centers"]; ok {
		centers := centersAny.([]cosmotools.CenterRecord)
		path := filepath.Join(outDir, fmt.Sprintf("step%03d.centers", step))
		var buf bytes.Buffer
		fmt.Fprintln(&buf, "# halo_tag mbp_tag x y z potential count")
		for _, c := range centers {
			fmt.Fprintf(&buf, "%d %d %.6f %.6f %.6f %.6g %d\n",
				c.HaloTag, c.MBPTag, c.Pos[0], c.Pos[1], c.Pos[2], c.Potential, c.Count)
		}
		if err := ckpt.WriteFileAtomic(path, buf.Bytes()); err != nil {
			return err
		}
		log.Printf("step %3d: wrote %d Level 3 centers to %s", step, len(centers), path)
	}
	// The marker must appear only after the products above are durable —
	// the listener treats it (and the .l2.gio itself) as a submission
	// trigger, so it gets the same atomic commit.
	marker := filepath.Join(outDir, fmt.Sprintf("step%03d.done", step))
	return ckpt.WriteFileAtomic(marker, []byte(fmt.Sprintf("%d\n", step)))
}
