// Observability surface of workflow-sim: the -cost study and the
// -trace/-spantree/-metrics artifact dump. Artifacts are deterministic
// bytes for a fixed seed (the obs package contract), which CI pins by
// running the tool twice and cmp-ing the outputs.
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
)

// costStudy reruns the paper's three headline workflow variants with an
// observer each, prints the per-phase cost breakdown priced under the
// Titan charge policy, and returns the observers for trace export. The
// phase rows mirror Table 4's columns; the charged core-hours reproduce
// Table 3's in-situ vs off-line vs co-scheduled comparison.
func costStudy(seed int64) ([]*obs.Observer, error) {
	policy := obs.TitanChargePolicy()
	kinds := []core.Kind{core.InSitu, core.Offline, core.CombinedCoScheduled}
	fmt.Println("Per-phase cost accounting (Titan charge policy: 1 node-hour = 30 core-hours):")
	fmt.Println()
	var observers []*obs.Observer
	for _, k := range kinds {
		s, err := core.DownscaledScenario(seed)
		if err != nil {
			return nil, err
		}
		o := obs.New(string(k), nil)
		s.Obs = o
		r, err := core.Run(s, k)
		if err != nil {
			return nil, err
		}
		observers = append(observers, o)
		rep := obs.Cost(o, policy)
		if err := rep.WriteTable(os.Stdout); err != nil {
			return nil, err
		}
		// Cross-check the span rollup against the report's own accounting:
		// everything charged except the "sim" physics phase is analysis-
		// attributable, and must reproduce Report.AnalysisCoreHours.
		charged := 0.0
		for _, l := range rep.Lines {
			if l.Category != "sim" {
				charged += l.CoreHours
			}
		}
		if math.Abs(charged-r.AnalysisCoreHours) > 1e-6*(1+math.Abs(r.AnalysisCoreHours)) {
			return nil, fmt.Errorf("cost rollup %.6f core-hours disagrees with report %.6f", charged, r.AnalysisCoreHours)
		}
		fmt.Printf("  analysis-attributable: %.2f core hours (matches Table 3 accounting)\n\n", charged)
	}
	return observers, nil
}

// dumpArtifacts writes the requested observability artifacts: Chrome
// trace-event JSON (chrome://tracing / Perfetto), the plain-text span
// tree, and the metrics registries on stdout. Writes are atomic so a
// killed run never leaves a torn artifact.
func dumpArtifacts(observers []*obs.Observer, tracePath, spanPath string, metrics bool) error {
	if tracePath != "" {
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf, observers...); err != nil {
			return err
		}
		if err := ckpt.WriteFileAtomic(tracePath, buf.Bytes()); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or Perfetto)\n", tracePath)
	}
	if spanPath != "" {
		var buf bytes.Buffer
		for _, o := range observers {
			if err := obs.WriteSpanTree(&buf, o); err != nil {
				return err
			}
		}
		if err := ckpt.WriteFileAtomic(spanPath, buf.Bytes()); err != nil {
			return err
		}
		fmt.Printf("span tree written to %s\n", spanPath)
	}
	if metrics {
		for _, o := range observers {
			if o == nil {
				continue
			}
			fmt.Printf("metrics: %s\n", o.Name())
			if err := o.Metrics().WriteText(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}
