// Command workflow-sim regenerates every table and figure of the paper's
// evaluation from the calibrated platform model (see DESIGN.md §4 and
// EXPERIMENTS.md for paper-vs-model numbers):
//
//	workflow-sim -table 1       data hierarchy sizes (Table 1)
//	workflow-sim -table 2       per-slice Find/Center node times (Table 2)
//	workflow-sim -table 3       workflow comparison summary (Table 3)
//	workflow-sim -table 4       detailed phase breakdown (Table 4)
//	workflow-sim -figure 3      halo mass function with the 300k split
//	workflow-sim -figure 4      projected per-node center-time histogram
//	workflow-sim -qcontinuum    the §4.1 Q Continuum case study
//	workflow-sim -subhalo       the §4.2 subhalo imbalance
//	workflow-sim -autosplit     the §4.1 automated split rule
//	workflow-sim -coschedule N  co-scheduling over N timesteps (wall-clock overlap)
//	workflow-sim -campaign N    full co-scheduled campaign with pile-up statistics
//	workflow-sim -machines      §4.2 Titan/Rhea/Moonlight analysis-machine choice
//	workflow-sim -resilience    workflow comparison under injected failures
//	workflow-sim -all           everything above
//
// With -out DIR, -campaign persists its products (Level 2 files, center
// catalogs, merged catalog) under DIR behind a crash-consistent journal;
// -resume DIR continues such a campaign after a crash, and -crash-time /
// -crash-step inject a process kill to exercise exactly that path:
//
//	workflow-sim -campaign 20 -out run/ -crash-time 9000
//	workflow-sim -resume run/
//
// With -gray, gray failures (job slowdowns, mid-run stalls, in-situ
// slowdowns, submit refusals, transit lag — tuned by -gray-slow,
// -gray-stall, -gray-insitu, -gray-submit, -gray-lag) are injected and
// recovered by heartbeat/deadline/straggler supervision with hedged
// re-execution; -step-budget arms adaptive in-situ→off-line degradation
// and -decisions prints the supervision decision log:
//
//	workflow-sim -resilience -gray
//	workflow-sim -campaign 20 -gray -step-budget 900 -decisions
//
// With -bitrot P, a persisted campaign's committed products silently rot
// at rest (seeded, length-preserving bit flips); -scrub SEC co-schedules
// background scrub jobs every SEC virtual seconds that re-verify products
// against the content-addressed lineage ledger, quarantine mismatches,
// and repair them by re-deriving only the producing step. The integrity
// report and (with -decisions) the scrub decision log are printed:
//
//	workflow-sim -campaign 20 -out run/ -bitrot 0.5 -scrub 300 -decisions
//
// With -cost, the three headline workflow variants rerun instrumented and
// a per-phase cost report prices each span category in node-hours under
// the Titan charge policy (1 node-hour = 30 core-hours), reproducing the
// paper's in-situ vs off-line vs co-scheduled accounting. -trace FILE
// exports the spans as Chrome trace-event JSON (chrome://tracing,
// Perfetto), -spantree FILE writes a plain-text span tree, and -metrics
// prints every observer's metrics registry; combined with -campaign, the
// artifacts cover the live campaign (campaign → step → job spans). All
// artifacts are byte-identical across runs for a fixed seed:
//
//	workflow-sim -cost -trace trace.json -spantree spans.txt -metrics
//	workflow-sim -campaign 20 -trace campaign.json -cost
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("workflow-sim: ")
	var (
		table      = flag.Int("table", 0, "regenerate Table 1-4")
		figure     = flag.Int("figure", 0, "regenerate Figure 3 or 4")
		qcontinuum = flag.Bool("qcontinuum", false, "run the Q Continuum case study")
		subhalo    = flag.Bool("subhalo", false, "run the subhalo imbalance study")
		autosplit  = flag.Bool("autosplit", false, "run the automated split rule")
		coschedule = flag.Int("coschedule", 0, "co-scheduling demo over N timesteps")
		campaign   = flag.Int("campaign", 0, "full co-scheduled campaign over N snapshots (pile-up statistics)")
		machines   = flag.Bool("machines", false, "compare analysis machines for the post job (§4.2 Titan/Rhea/Moonlight trade-off)")
		resilience = flag.Bool("resilience", false, "compare workflow degradation under injected failures (job death, node drains, write faults, listener outages)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault injector seed (with -resilience/-gray)")
		gray       = flag.Bool("gray", false, "add gray failures (job slowdowns, mid-run stalls, in-situ slowdowns, submit refusals, transit lag) to -resilience and -campaign runs; supervision recovers them")
		graySlow   = flag.Float64("gray-slow", 0.25, "with -gray: per-attempt job slowdown probability")
		grayStall  = flag.Float64("gray-stall", 0.2, "with -gray: per-attempt mid-run stall probability")
		grayInsitu = flag.Float64("gray-insitu", 0.3, "with -gray: per-step in-situ analysis slowdown probability")
		graySubmit = flag.Float64("gray-submit", 0.15, "with -gray: per-try listener submit refusal probability")
		grayLag    = flag.Float64("gray-lag", 0.2, "with -gray: per-delivery transit lag probability")
		stepBudget = flag.Float64("step-budget", 0, "with -gray: in-situ seconds budget per step; over-budget steps spill their center work to the off-line path")
		decisions  = flag.Bool("decisions", false, "with -gray -campaign: print the supervision decision log")
		all        = flag.Bool("all", false, "run everything")
		seed       = flag.Int64("seed", 1, "population synthesis seed")
		outDir     = flag.String("out", "", "with -campaign: persist products under this directory behind a crash-consistent journal (the campaign becomes resumable)")
		resumeDir  = flag.String("resume", "", "resume a persisted campaign from its directory (parameters are read from the journal)")
		crashTime  = flag.Float64("crash-time", 0, "with -out/-resume: kill the engine at this virtual time (exercise crash recovery)")
		crashStep  = flag.Int("crash-step", 0, "with -out/-resume: kill the engine mid-write of this step's Level 2 file, leaving a torn file")
		bitrot     = flag.Float64("bitrot", 0, "with -out/-resume: per-product at-rest bit-rot probability (seeded, length-preserving flips; detected and repaired via the lineage ledger)")
		scrub      = flag.Float64("scrub", 0, "with -out/-resume: co-schedule background scrub jobs every SEC virtual seconds re-verifying committed products")
		cost       = flag.Bool("cost", false, "per-phase cost accounting for the three headline workflows under the Titan charge policy; with -campaign, also price the campaign's job spans")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON of all instrumented runs to FILE (deterministic bytes per seed)")
		spanPath   = flag.String("spantree", "", "write a plain-text span tree of all instrumented runs to FILE")
		metrics    = flag.Bool("metrics", false, "print every instrumented run's metrics registry (deterministic encode order)")
	)
	flag.Parse()
	// The gray profile is validated at the flag boundary: a malformed
	// probability or factor range dies here, not mid-campaign.
	var grayP *fault.Profile
	if *gray {
		p := grayFaultProfile(*faultSeed, *graySlow, *grayStall, *grayInsitu, *graySubmit, *grayLag)
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		grayP = &p
	}
	// Observability: -cost/-trace/-spantree/-metrics instrument the runs
	// they accompany. A campaign-mode invocation gets a live observer
	// (campaign → step → job spans); -cost additionally reruns the three
	// headline workflows instrumented. Observers accumulate here and are
	// exported together at the end.
	observe := *cost || *tracePath != "" || *spanPath != "" || *metrics
	var observers []*obs.Observer
	var campObs *obs.Observer
	if observe && (*campaign > 0 || *resumeDir != "" || *all) {
		campObs = obs.New("campaign", nil)
	}
	ran := false
	run := func(enabled bool, fn func(int64) error) {
		if !enabled && !*all {
			return
		}
		ran = true
		if err := fn(*seed); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	run(*table == 1, table1)
	run(*table == 2, table2)
	run(*table == 3, table3)
	run(*table == 4, table4)
	run(*figure == 3, figure3)
	run(*figure == 4, figure4)
	run(*qcontinuum, qContinuum)
	run(*subhalo, subhaloStudy)
	run(*autosplit, autoSplit)
	run(*machines, machineComparison)
	run(*resilience, func(seed int64) error { return resilienceStudy(seed, *faultSeed, grayP) })
	if *coschedule > 0 || *all {
		ran = true
		n := *coschedule
		if n <= 0 {
			n = 5
		}
		if err := coScheduleDemo(*seed, n); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *cost {
		ran = true
		costObs, err := costStudy(*seed)
		if err != nil {
			log.Fatal(err)
		}
		observers = append(observers, costObs...)
	}
	if *resumeDir != "" {
		ran = true
		if err := persistedCampaign(*seed, 0, *resumeDir, *crashTime, *crashStep, *faultSeed, *bitrot, *scrub, *decisions, campObs); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *campaign > 0 || *all {
		ran = true
		n := *campaign
		if n <= 0 {
			n = 100
		}
		var err error
		if *outDir != "" {
			err = persistedCampaign(*seed, n, *outDir, *crashTime, *crashStep, *faultSeed, *bitrot, *scrub, *decisions, campObs)
		} else {
			err = campaignStudy(*seed, n, grayP, *stepBudget, *decisions, campObs)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if campObs != nil {
		observers = append(observers, campObs)
		if *cost {
			rep := obs.Cost(campObs, obs.TitanChargePolicy())
			if err := rep.WriteTable(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
	if len(observers) > 0 {
		if err := dumpArtifacts(observers, *tracePath, *spanPath, *metrics); err != nil {
			log.Fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func machineComparison(seed int64) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	choices, err := core.CompareAnalysisMachines(s, []platform.Machine{
		platform.Titan(), platform.Rhea(), platform.Moonlight(),
	})
	if err != nil {
		return err
	}
	fmt.Println("Analysis-machine choice for the combined workflow's post job (§4.2):")
	fmt.Printf("  %-10s %6s %14s %12s %10s %s\n", "machine", "GPUs", "analysis [s]", "queue [s]", "core hrs", "small-job cap")
	for _, c := range choices {
		gpus := "no"
		if c.Machine.HasGPU {
			gpus = "yes"
		}
		cap := "-"
		if c.SubjectToSmallJobPolicy {
			cap = fmt.Sprintf("max %d jobs < %d nodes", c.Machine.SmallJobLimit, c.Machine.SmallJobNodes)
		}
		fmt.Printf("  %-10s %6s %14.0f %12.0f %10.1f %s\n",
			c.Machine.Name, gpus, c.PostAnalysisSeconds, c.QueueWaitSeconds, c.CoreHours, cap)
	}
	return nil
}

// defaultFaultProfile is the facility-weather profile the resilience
// comparison runs under: occasional job death, flaky Lustre writes with
// rare silent truncation, a listener outage early in the run, and a node
// drain on the analysis partition.
func defaultFaultProfile(faultSeed int64) fault.Profile {
	return fault.Profile{
		Seed:              faultSeed,
		JobFailureProb:    0.25,
		WriteFailProb:     0.10,
		WriteTruncateProb: 0.05,
		ListenerOutages:   []fault.Window{{Start: 600, End: 1200}},
		NodeDrains:        []fault.Drain{{Window: fault.Window{Start: 400, End: 900}, Nodes: 2}},
	}
}

// grayFaultProfile is the gray-weather profile the -gray flag family
// tunes: nothing in it kills a job outright — every disruption is a
// slowdown, stall, refusal or lag that only supervision can see.
func grayFaultProfile(faultSeed int64, slow, stall, insitu, submit, lag float64) fault.Profile {
	return fault.Profile{
		Seed:               faultSeed,
		JobSlowdownProb:    slow,
		JobStallProb:       stall,
		InSituSlowdownProb: insitu,
		SubmitFailProb:     submit,
		TransitDelayProb:   lag,
	}
}

func resilienceStudy(seed, faultSeed int64, grayP *fault.Profile) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	s.Timesteps = 5
	s.PostQueueWait = 0
	p := defaultFaultProfile(faultSeed)
	if grayP != nil {
		// Layer gray weather on top of the fail-stop mix: the supervised
		// run faces both at once.
		p.JobSlowdownProb = grayP.JobSlowdownProb
		p.JobStallProb = grayP.JobStallProb
		p.InSituSlowdownProb = grayP.InSituSlowdownProb
		p.SubmitFailProb = grayP.SubmitFailProb
		p.TransitDelayProb = grayP.TransitDelayProb
	}
	rows, err := core.ResilienceStudy(s, p)
	if err != nil {
		return err
	}
	fmt.Printf("Resilience under injected failures (fault seed %d; %.0f%% job death, %.0f%% write fail, %.0f%% truncation,\n"+
		"listener outage %.0f-%.0f s, %d nodes drained %.0f-%.0f s; retries: %d attempts, %.0f s backoff x2 +25%% jitter):\n",
		p.Seed, 100*p.JobFailureProb, 100*p.WriteFailProb, 100*p.WriteTruncateProb,
		p.ListenerOutages[0].Start, p.ListenerOutages[0].End,
		p.NodeDrains[0].Nodes, p.NodeDrains[0].Start, p.NodeDrains[0].End,
		4, 30.0)
	if grayP != nil {
		fmt.Printf("Gray weather on top (%.0f%% slowdown, %.0f%% stall, %.0f%% in-situ slowdown, %.0f%% submit refusal, %.0f%% lag);\n"+
			"supervision: heartbeats, deadlines, hedged re-execution, adaptive degradation:\n",
			100*p.JobSlowdownProb, 100*p.JobStallProb, 100*p.InSituSlowdownProb,
			100*p.SubmitFailProb, 100*p.TransitDelayProb)
	}
	fmt.Print(core.FormatResilience(rows))
	return nil
}

// persistedCampaign runs (or resumes) a crash-consistent campaign rooted
// at dir. steps == 0 means resume: the horizon and seeds are read back
// from the journal's meta record. A crash-time/crash-step kill is armed
// for the *current* generation, so repeated invocations with the same flag
// crash once and then complete. bitrot > 0 injects seeded at-rest
// corruption into committed products; scrub > 0 co-schedules background
// scrub jobs at that interval.
func persistedCampaign(seed int64, steps int, dir string, crashTime float64, crashStep int, faultSeed int64, bitrot, scrub float64, decisions bool, o *obs.Observer) error {
	// Peek at the journal for the generation count and, on resume, the
	// pinned campaign parameters.
	gen := 0
	if _, err := os.Stat(filepath.Join(dir, "journal.wal")); err == nil {
		j, records, err := ckpt.Open(filepath.Join(dir, "journal.wal"))
		if err != nil {
			return err
		}
		if err := j.Close(); err != nil {
			return err
		}
		m := ckpt.Replay(records)
		gen = m.Generation
		if m.Meta != nil {
			seed, steps = m.Meta.Seed, m.Meta.Timesteps
		}
	}
	if steps <= 0 {
		return fmt.Errorf("no campaign journal to resume in %s", dir)
	}
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	s.PostQueueWait = 0
	if crashTime > 0 || crashStep > 0 || bitrot > 0 {
		p := &fault.Profile{Seed: faultSeed, BitRotProb: bitrot}
		if crashTime > 0 || crashStep > 0 {
			p.Crashes = make([]fault.Crash, gen+1)
			p.Crashes[gen] = fault.Crash{AtTime: crashTime, AtStep: crashStep}
		}
		if err := p.Validate(); err != nil {
			return err
		}
		s.Faults = p
	}
	if scrub > 0 {
		s.Scrub = &core.ScrubPolicy{Interval: scrub}
	}
	s.Obs = o
	rep, err := core.ResumableCampaign(s, steps, dir, seed)
	if errors.Is(err, core.ErrCampaignCrashed) {
		fmt.Printf("Campaign crashed (generation %d); the journal under %s holds all committed work.\n", gen, dir)
		fmt.Printf("Continue with: workflow-sim -resume %s\n", dir)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("Persisted co-scheduled campaign over %d snapshots in %s:\n", rep.Timesteps, dir)
	fmt.Printf("  generation %d: %d steps and %d analyses skipped (journaled), %d torn files reconciled (%d gio blocks salvaged)\n",
		rep.Resume.Generation, rep.Resume.StepsSkipped, rep.Resume.PostsSkipped,
		rep.Resume.TornFiles, rep.Resume.SalvagedBlocks)
	fmt.Printf("  simulation finished:   %.0f s\n", rep.SimWallClock)
	fmt.Printf("  all analysis done:     %.0f s\n", rep.TotalWallClock)
	fmt.Printf("  products: %d Level 2 files, %d center catalogs, merged catalog.txt\n",
		rep.Timesteps, rep.Timesteps)
	if bitrot > 0 || scrub > 0 {
		in := rep.Integrity
		fmt.Printf("  integrity: %d verified, %d corrupt, %d quarantined, %d repaired, %d escalated (%d scrub jobs)\n",
			in.Verified, in.Corruptions, in.Quarantined, in.Repaired, in.Escalated, in.ScrubJobs)
		if decisions {
			fmt.Println("  scrub decision log:")
			for _, d := range rep.ScrubDecisions {
				fmt.Printf("    %s\n", d.String())
			}
		}
	}
	return nil
}

func campaignStudy(seed int64, steps int, grayP *fault.Profile, stepBudget float64, decisions bool, o *obs.Observer) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	s.PostQueueWait = 0
	s.Obs = o
	if grayP != nil {
		s.Faults = grayP
		if stepBudget > 0 {
			s.Degrade = &core.DegradePolicy{StepBudget: stepBudget, RescueLost: true}
		}
	}
	rep, err := core.Campaign(s, steps)
	if err != nil {
		return err
	}
	fmt.Printf("Co-scheduled campaign over %d snapshots (§3.2 pile-up behaviour):\n", rep.Timesteps)
	fmt.Printf("  simulation finished:   %.0f s\n", rep.SimWallClock)
	fmt.Printf("  all analysis done:     %.0f s (trailing %.0f s after sim)\n", rep.TotalWallClock, rep.TrailingSeconds)
	fmt.Printf("  simple workflow would finish: %.0f s (co-scheduling saves %.0f%%)\n",
		rep.SimpleWallClock, 100*(1-rep.TotalWallClock/rep.SimpleWallClock))
	fmt.Printf("  analysis jobs: %d, %.0f%% overlapped the simulation, max pile-up %d\n",
		rep.AnalysisJobs, 100*rep.OverlapFraction, rep.MaxPileUp)
	if grayP != nil {
		res := rep.Resilience
		fmt.Printf("  gray weather: %d stalls, %d hedges (%d backup wins), %d submit refusals (%d breaker trips, %d skips)\n",
			res.Stalls, res.HedgesLaunched, res.HedgeWins, res.SubmitFaults, res.BreakerOpens, res.BreakerSkips)
		fmt.Printf("  degradation:  %d steps spilled off-line, %d lost jobs rescued, %.2f node-hours lost to stragglers\n",
			res.DegradedSteps, res.RescuedSteps, res.StragglerNodeHours)
		if decisions {
			fmt.Println("  supervision decision log:")
			fmt.Print(core.FormatDecisions(rep.Decisions))
		}
	}
	return nil
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.1f TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.1f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", b/1e6)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

func table1(seed int64) error {
	rows, err := core.Table1(seed)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 — data hierarchy, last step only (paper: 40 GB/5 GB/43 MB and 20 TB/4 TB/10 GB):")
	for _, r := range rows {
		fmt.Printf("  %-8s Level 1 %-10s Level 2 %-10s Level 3 %s\n",
			r.Label, fmtBytes(r.Level1Bytes), fmtBytes(r.Level2Bytes), fmtBytes(r.Level3Bytes))
	}
	return nil
}

func table2(seed int64) error {
	rows, err := core.Table2(seed)
	if err != nil {
		return err
	}
	fmt.Println("Table 2 — per-slice node seconds (paper: find 352-2143; center 19-21,250):")
	fmt.Println("  slice     z   find-max  find-min  center-max  center-min")
	for _, r := range rows {
		fmt.Printf("  %5d %5.3f %10.0f %9.0f %11.0f %11.1f\n",
			r.Slice, r.Redshift, r.FindMax, r.FindMin, r.CenterMax, r.CenterMin)
	}
	return nil
}

func table3(seed int64) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	fmt.Println("Table 3 — workflow comparison (paper core hours: 193 / 356 / 135 / same / n-a):")
	fmt.Printf("  %-30s %-8s %-8s %-15s %s\n", "method", "I/O", "redist.", "queueing", "core hrs")
	for _, k := range core.Kinds() {
		r, err := core.Run(s, k)
		if err != nil {
			return err
		}
		fmt.Printf("  %-30s %-8s %-8s %-15s %7.0f\n",
			r.Workflow, r.IOLevel, r.RedistLevel, r.Queueing, r.AnalysisCoreHours)
	}
	return nil
}

func table4(seed int64) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	fmt.Println("Table 4 — detailed phases, seconds (paper rows: in-situ 772/722/0.3; off-line 779/0/5 then 5/435/892/0.3; combined 774/361/3 then 3/75/1075/0.2):")
	fmt.Printf("  %-30s | %8s %9s %6s | %7s %6s %7s %9s %6s | %8s\n",
		"workflow", "sim", "analysis", "write", "queue", "read", "redist", "analysis", "write", "wall")
	for _, k := range core.Kinds() {
		r, err := core.Run(s, k)
		if err != nil {
			return err
		}
		fmt.Printf("  %-30s | %8.0f %9.0f %6.1f | %7.0f %6.1f %7.1f %9.0f %6.2f | %8.0f\n",
			r.Workflow, r.SimSeconds, r.AnalysisSeconds, r.SimWriteSeconds,
			r.PostQueueWait, r.ReadSeconds, r.RedistributeSeconds,
			r.PostAnalysisSeconds, r.PostWriteSeconds, r.WallClock)
	}
	return nil
}

func figure3(seed int64) error {
	bins, total, off, err := core.Figure3(seed)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 3 — halo mass function at z=0 (paper: 167,686,789 halos, 84,719 off-loaded)\n")
	fmt.Printf("  synthesized: %.0f halos, %.0f off-loaded (> 300k particles)\n", total, off)
	fmt.Println("  particles       mass [Msun/h]   count      (o = off-loaded)")
	for _, b := range bins {
		mark := " "
		if b.Offloaded {
			mark = "o"
		}
		fmt.Printf("  %12.3g  %14.3g  %10.3g %s\n", b.Particles, b.MassMsun, b.Count, mark)
	}
	return nil
}

func figure4(seed int64) error {
	h, err := core.Figure4(seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 — projected per-node center-finding times for off-loaded halos")
	fmt.Println("  (16,384 nodes, 1000 s bins, log-scaled bars; paper's tail reaches 21,250 s)")
	fmt.Print(h.Render(40, true))
	return nil
}

func qContinuum(seed int64) error {
	r, err := core.QContinuumStudy(seed)
	if err != nil {
		return err
	}
	fmt.Println(r)
	return nil
}

func subhaloStudy(seed int64) error {
	slow, fast, err := core.SubhaloImbalance(seed)
	if err != nil {
		return err
	}
	fmt.Printf("Subhalo imbalance (§4.2; paper: 8172 s slowest, 1457 s fastest, >5x):\n")
	fmt.Printf("  slowest node %.0f s, fastest %.0f s, imbalance %.1fx\n", slow, fast, slow/fast)
	return nil
}

func autoSplit(seed int64) error {
	s, err := core.QContinuumScenario(seed)
	if err != nil {
		return err
	}
	d, err := core.AutoSplit(s)
	if err != nil {
		return err
	}
	fmt.Println("Automated split rule (§4.1):")
	fmt.Printf("  t_io              = %.0f s\n", d.TIOSeconds)
	fmt.Printf("  m_max_io          = %d particles\n", d.MaxInSituSize)
	fmt.Printf("  m_max_sim         = %d particles\n", d.LargestSimSize)
	fmt.Printf("  off-load needed   = %v (threshold %d)\n", d.OffloadNeeded, d.Threshold)
	fmt.Printf("  co-schedule ranks = %d  (T=%.0f s, t_max=%.0f s)\n",
		d.CoScheduleRanks, d.TotalOffloadSeconds, d.LargestHaloSeconds)
	return nil
}

func coScheduleDemo(seed int64, steps int) error {
	s, err := core.DownscaledScenario(seed)
	if err != nil {
		return err
	}
	s.Timesteps = steps
	s.PostQueueWait = 0
	simple, err := core.Run(s, core.CombinedSimple)
	if err != nil {
		return err
	}
	co, err := core.Run(s, core.CombinedCoScheduled)
	if err != nil {
		return err
	}
	fmt.Printf("Co-scheduling over %d timesteps:\n", steps)
	fmt.Printf("  simple (post job after sim):  wall %.0f s\n", simple.WallClock)
	fmt.Printf("  co-scheduled (listener):      wall %.0f s (%.0f%% of simple)\n",
		co.WallClock, 100*co.WallClock/simple.WallClock)
	fmt.Printf("  analysis job starts: ")
	for _, t := range co.AnalysisJobStarts {
		fmt.Printf("%.0f ", t)
	}
	fmt.Println()
	return nil
}
