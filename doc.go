// Package repro is a from-scratch Go reproduction of "Large-Scale
// Compute-Intensive Analysis via a Combined In-Situ and Co-Scheduling
// Workflow Approach" (Sewell et al., SC '15): the HACC/CosmoTools analysis
// workflow study.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), the runnable tools under cmd/, and the usage walkthroughs
// under examples/. EXPERIMENTS.md records paper-versus-reproduction
// numbers for every table and figure; the benchmarks in bench_test.go
// regenerate them.
package repro
