// Quickstart: simulate a small ΛCDM box end-to-end and run the paper's
// core analysis chain — power spectrum, FOF halos, MBP centers — entirely
// in-process. Takes a few seconds.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -np 16 -steps 8   (tiny config, CI smoke test)
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/center"
	"repro/internal/cosmo"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/nbody"
	"repro/internal/powerspec"
)

func main() {
	log.SetFlags(0)
	npFlag := flag.Int("np", 32, "particles per dimension")
	stepsFlag := flag.Int("steps", 40, "particle-mesh steps to z=0")
	flag.Parse()
	params := cosmo.Default()
	var (
		np    = *npFlag
		steps = *stepsFlag
	)
	const (
		box   = 40.0 // Mpc/h
		zInit = 50.0
	)

	// 1. Zel'dovich initial conditions from the linear power spectrum.
	particles, a0, err := ic.Generate(params, ic.Options{NP: np, Box: box, ZInit: zInit, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial conditions: %d particles at z=%.0f, particle mass %.3g Msun/h\n",
		particles.N(), zInit, params.ParticleMass(box, np))

	// 2. Evolve to z=0 with the particle-mesh gravity solver.
	sim, err := nbody.NewSimulation(params, box, np, particles, a0)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(1.0, steps, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolved to z=%.2f in %d steps\n", sim.Redshift(), steps)

	// 3. Power spectrum — the paper's canonical in-situ analysis.
	pk, err := powerspec.Measure(sim.P, box, np, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npower spectrum P(k):")
	for b := range pk.K {
		if pk.Modes[b] == 0 {
			continue
		}
		fmt.Printf("  k=%6.3f h/Mpc  P=%10.1f (Mpc/h)^3  (%d modes)\n", pk.K[b], pk.P[b], pk.Modes[b])
	}

	// 4. FOF halo finding with the standard b=0.2 linking length.
	linking := 0.2 * box / float64(np)
	cat, err := halo.FOF(sim.P, box, halo.Options{LinkingLength: linking, MinSize: 10, Periodic: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfound %d halos (>= 10 particles); largest has %d particles\n",
		len(cat.Halos), cat.LargestCount())

	// 5. MBP centers for the five largest halos.
	fmt.Println("\nmost bound particle centers:")
	mass := params.ParticleMass(box, np)
	for i := range cat.Halos {
		if i == 5 {
			break
		}
		h := &cat.Halos[i]
		ux, uy, uz := center.Unwrap(sim.P.X, sim.P.Y, sim.P.Z, h.Indices, box)
		res, err := center.BruteForce(ux, uy, uz, center.Options{Mass: mass, Softening: 1e-3})
		if err != nil {
			log.Fatal(err)
		}
		gi := h.Indices[res.Index]
		fmt.Printf("  halo %4d (%4d particles): center (%5.2f, %5.2f, %5.2f), potential %.3g\n",
			h.Tag, h.Count(), sim.P.X[gi], sim.P.Y[gi], sim.P.Z[gi], res.Potential)
	}
}
