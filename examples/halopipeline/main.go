// Halo pipeline: the full Level 1 → Level 2 → Level 3 analysis chain on a
// clustered snapshot, mirroring the Q Continuum analysis tasks of §4.1:
// halo identification, the center-finding split at a size threshold,
// spherical-overdensity masses seeded at the centers, subhalo finding in
// the biggest halos, and the halo mass function (the small-scale analogue
// of Figure 3).
//
//	go run ./examples/halopipeline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/center"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/kdtree"
	"repro/internal/nbody"
	"repro/internal/so"
	"repro/internal/stats"
	"repro/internal/subhalo"
)

func main() {
	log.SetFlags(0)
	params := cosmo.Default()
	const (
		ng             = 32
		box            = 48.0
		splitThreshold = 400 // the paper's 300k, scaled to this tiny box
	)
	// Power-of-two particle grid needed by the IC generator: use 32³ and a
	// slightly larger box for decent statistics.
	particles, a0, err := ic.Generate(params, ic.Options{NP: 32, Box: box, ZInit: 50, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nbody.NewSimulation(params, box, ng, particles, a0)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(1.0, 40, nil); err != nil {
		log.Fatal(err)
	}
	p := sim.P
	mass := params.ParticleMass(box, 32)
	fmt.Printf("snapshot: %d particles at z=%.2f\n", p.N(), sim.Redshift())

	// --- Halo identification (Level 1 -> catalog) ---
	linking := 0.2 * box / 32
	t0 := time.Now()
	cat, err := halo.FOF(p, box, halo.Options{LinkingLength: linking, MinSize: 10, Periodic: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFOF: %d halos in %.0f ms (largest %d particles)\n",
		len(cat.Halos), float64(time.Since(t0).Microseconds())/1000, cat.LargestCount())

	// --- Mass function (Figure 3 analogue, with the split marked) ---
	hist, err := stats.NewLogHistogram(10, float64(cat.LargestCount())*1.1, 8)
	if err != nil {
		log.Fatal(err)
	}
	for i := range cat.Halos {
		hist.Add(float64(cat.Halos[i].Count()))
	}
	fmt.Println("\nhalo mass function (log bins in particle count; o = off-loaded):")
	edges := hist.BinEdges()
	for b, c := range hist.Counts {
		if c == 0 {
			continue
		}
		mark := " "
		if edges[b] > splitThreshold {
			mark = "o"
		}
		fmt.Printf("  %7.0f - %7.0f particles: %4d halos %s\n", edges[b], edges[b+1], c, mark)
	}

	// --- Center finding with the combined-workflow split ---
	t0 = time.Now()
	centers, level2, err := cosmotools.SplitCenterFinding(p, box, cat, splitThreshold,
		center.Options{Mass: mass, Softening: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplit at %d particles: %d centers in-situ (%.0f ms), %d halos (%d particles) to Level 2\n",
		splitThreshold, len(centers), float64(time.Since(t0).Microseconds())/1000,
		len(level2.Spans), level2.Particles.N())

	// --- "Off-line" center finding of the Level 2 payload ---
	t0 = time.Now()
	for _, span := range level2.Spans {
		members := make([]int, 0, span.End-span.Start)
		for i := span.Start; i < span.End; i++ {
			members = append(members, i)
		}
		ux, uy, uz := center.Unwrap(level2.Particles.X, level2.Particles.Y, level2.Particles.Z, members, box)
		res, err := center.BruteForce(ux, uy, uz, center.Options{Mass: mass, Softening: 1e-3})
		if err != nil {
			log.Fatal(err)
		}
		gi := members[res.Index]
		centers = append(centers, cosmotools.CenterRecord{
			HaloTag: span.Tag,
			MBPTag:  level2.Particles.Tag[gi],
			Pos: [3]float64{level2.Particles.X[gi], level2.Particles.Y[gi],
				level2.Particles.Z[gi]},
			Potential: res.Potential,
			Count:     span.End - span.Start,
		})
	}
	fmt.Printf("off-line centers for large halos: %.0f ms; %d total centers after merge\n",
		float64(time.Since(t0).Microseconds())/1000, len(centers))

	// --- Spherical overdensity masses seeded at the centers ---
	tree, err := kdtree.Build(p.X, p.Y, p.Z, box, 16)
	if err != nil {
		log.Fatal(err)
	}
	rhoMean := params.MeanMatterDensity()
	fmt.Println("\nspherical overdensity masses (Delta=200 x mean):")
	printed := 0
	for _, c := range centers {
		res, err := so.Measure(tree, c.Pos[0], c.Pos[1], c.Pos[2], so.Options{
			ParticleMass: mass, Delta: 200, RhoRef: rhoMean, MaxRadius: 3, MinParticles: 20,
		})
		if err != nil {
			continue
		}
		if printed < 5 {
			fmt.Printf("  halo %6d: M200=%.3g Msun/h  R200=%.2f Mpc/h  (%d particles; FOF had %d)\n",
				c.HaloTag, res.Mass, res.Radius, res.N, c.Count)
		}
		printed++
	}
	fmt.Printf("  (%d SO masses measured)\n", printed)

	// --- Subhalos in the largest halo ---
	big := &cat.Halos[0]
	ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, big.Indices, box)
	vx := make([]float64, big.Count())
	vy := make([]float64, big.Count())
	vz := make([]float64, big.Count())
	for k, i := range big.Indices {
		vx[k], vy[k], vz[k] = p.VX[i], p.VY[i], p.VZ[i]
	}
	t0 = time.Now()
	sub, err := subhalo.Find(ux, uy, uz, vx, vy, vz, subhalo.Options{
		Mass: mass, K: 16, MinSize: 20, Softening: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubhalos of the largest halo (%d particles, %.0f ms, %d candidates):\n",
		big.Count(), float64(time.Since(t0).Microseconds())/1000, sub.Candidates)
	for i, sh := range sub.Subhalos {
		fmt.Printf("  subhalo %d: %d particles (unbound removed: %d)\n", i, sh.Count(), sh.Removed)
	}
}
