// In-situ: writing a custom CosmoTools algorithm and driving a simulation
// with a config-steered analysis pipeline — the extension path §3.1
// describes ("extensible to support new analysis algorithms, and ...
// easily configurable in the problem setup, even while the simulation is
// running for computational steering").
//
// The custom algorithm below tracks the box's density extremes over time;
// the standard power spectrum and halo finder run alongside at cadences
// set by an inline CosmoTools config.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/nbody"
	"repro/internal/powerspec"
)

// densityExtremes is a user-defined in-situ analysis: it deposits the
// particles on a coarse grid and records the highest and lowest density
// contrast — a cheap proxy for "is interesting structure forming yet?"
// that a scientist might use to steer output cadence mid-run.
type densityExtremes struct {
	sched cosmotools.EverySchedule
	grid  int
	// History of (step, min delta, max delta).
	History [][3]float64
}

func (d *densityExtremes) Name() string { return "extremes" }

func (d *densityExtremes) SetParameters(params map[string]string) error {
	sched, err := cosmotools.MaybeParseSchedule(params, d.sched)
	if err != nil {
		return err
	}
	d.sched = sched
	if d.grid, err = cosmotools.IntParam(params, "grid", 16); err != nil {
		return err
	}
	return nil
}

func (d *densityExtremes) ShouldExecute(ctx *cosmotools.Context) bool {
	return d.sched.ShouldRun(ctx.Step)
}

func (d *densityExtremes) Execute(ctx *cosmotools.Context) error {
	g, err := grid.NewScalar(d.grid, ctx.Box)
	if err != nil {
		return err
	}
	for i := 0; i < ctx.Particles.N(); i++ {
		g.DepositCIC(ctx.Particles.X[i], ctx.Particles.Y[i], ctx.Particles.Z[i], 1)
	}
	if err := g.ToDensityContrast(); err != nil {
		return err
	}
	lo, hi := g.Data[0], g.Data[0]
	for _, v := range g.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	d.History = append(d.History, [3]float64{float64(ctx.Step), lo, hi})
	ctx.Outputs["extremes/minmax"] = [2]float64{lo, hi}
	return nil
}

const configText = `
# CosmoTools steering config: cadences and parameters per tool.
[extremes]
every = 5
grid = 16

[powerspectrum]
steps = 20, 40
grid = 32
bins = 8

[halofinder]
steps = 40
linking_length = 0.25
min_size = 10
`

func main() {
	log.SetFlags(0)
	params := cosmo.Default()
	const (
		np    = 32
		box   = 40.0
		steps = 40
	)
	particles, a0, err := ic.Generate(params, ic.Options{NP: np, Box: box, ZInit: 50, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nbody.NewSimulation(params, box, np, particles, a0)
	if err != nil {
		log.Fatal(err)
	}

	// Register the standard tools plus the custom one, then configure all
	// three from the same config text an input deck would point at.
	var manager cosmotools.Manager
	manager.Clock = time.Now // driver process: wall-clock timings are wanted here
	extremes := &densityExtremes{}
	for _, a := range []cosmotools.Algorithm{
		cosmotools.NewPowerSpectrum(),
		cosmotools.NewHaloFinder(),
		extremes,
	} {
		if err := manager.Register(a); err != nil {
			log.Fatal(err)
		}
	}
	cfg, err := cosmotools.ParseConfig(strings.NewReader(configText))
	if err != nil {
		log.Fatal(err)
	}
	if err := manager.Configure(cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered algorithms: %v\n\n", manager.Algorithms())

	mass := params.ParticleMass(box, np)
	err = sim.Run(1.0, steps, func(step int) error {
		ctx := cosmotools.NewContext(step, sim.A, box, mass, sim.P)
		if err := manager.Execute(ctx); err != nil {
			return err
		}
		if mm, ok := ctx.Outputs["extremes/minmax"]; ok {
			v := mm.([2]float64)
			fmt.Printf("step %2d (z=%5.2f): delta in [%6.2f, %7.2f]\n", step, ctx.Redshift, v[0], v[1])
		}
		if pkAny, ok := ctx.Outputs["powerspectrum/pk"]; ok {
			pk := pkAny.(*powerspec.Result)
			fmt.Printf("step %2d: P(k) measured at %d bins; P(k1)=%.1f\n", step, len(pk.K), pk.P[0])
		}
		if catAny, ok := ctx.Outputs["halofinder/catalog"]; ok {
			cat := catAny.(*halo.Catalog)
			fmt.Printf("step %2d: %d halos, largest %d particles\n", step, len(cat.Halos), cat.LargestCount())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndensity extreme history (the custom algorithm's product):")
	for _, h := range extremes.History {
		fmt.Printf("  step %2.0f: [%6.2f, %7.2f]\n", h[0], h[1], h[2])
	}
}
