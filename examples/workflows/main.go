// Workflows: a real-compute (not modelled) comparison of the paper's three
// analysis strategies on one snapshot — the laptop-scale analogue of
// Table 4.
//
//   - in-situ: analysis runs directly on the in-memory particles.
//   - off-line: particles are written to a gio file (Level 1), read back,
//     redistributed across in-process MPI ranks, then analyzed.
//   - combined: halos found in-situ; centers for halos <= the split found
//     in-situ; particles of larger halos written as Level 2, read back and
//     analyzed by a separate (smaller) "job".
//
// Every phase is timed for real; the same orderings the paper reports
// should emerge: off-line pays the Level 1 I/O + redistribution, the
// combined variant moves a fraction of the data and splits the work.
//
//	go run ./examples/workflows
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/center"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/gio"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/mpi"
	"repro/internal/nbody"
)

const (
	np             = 32
	box            = 40.0
	splitThreshold = 300
	ranks          = 4
)

func main() {
	log.SetFlags(0)
	params := cosmo.Default()
	particles, a0, err := ic.Generate(params, ic.Options{NP: np, Box: box, ZInit: 50, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nbody.NewSimulation(params, box, np, particles, a0)
	if err != nil {
		log.Fatal(err)
	}
	simStart := time.Now()
	if err := sim.Run(1.0, 40, nil); err != nil {
		log.Fatal(err)
	}
	simSec := time.Since(simStart).Seconds()
	mass := params.ParticleMass(box, np)
	fmt.Printf("simulation: %d particles to z=0 in %.2fs\n\n", sim.P.N(), simSec)

	dir, err := os.MkdirTemp("", "workflows")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Workflow 1: purely in-situ ---
	t0 := time.Now()
	cat, centers := analyze(sim.P, box, mass, 0)
	inSitu := time.Since(t0).Seconds()
	fmt.Printf("in-situ:   analysis %.3fs (%d halos, %d centers), no I/O, no redistribution\n",
		inSitu, len(cat.Halos), len(centers))

	// --- Workflow 2: purely off-line ---
	l1Path := filepath.Join(dir, "level1.gio")
	t0 = time.Now()
	if err := gio.WriteFile(l1Path, []gio.Block{{Rank: 0, Particles: sim.P}}); err != nil {
		log.Fatal(err)
	}
	writeSec := time.Since(t0).Seconds()

	t0 = time.Now()
	blocks, err := gio.ReadFile(l1Path)
	if err != nil {
		log.Fatal(err)
	}
	merged := gio.Merge(blocks)
	readSec := time.Since(t0).Seconds()

	// Redistribute across in-process MPI ranks — the alltoall the paper's
	// off-line analysis pays after every read.
	t0 = time.Now()
	var redistributed int
	err = mpi.RunRanks(ranks, func(c *mpi.Comm) error {
		// Rank 0 starts with everything (as if read from one file);
		// Distribute sends each particle to its slab owner.
		local := nbody.NewParticles(0)
		if c.Rank() == 0 {
			local = merged
		}
		mine, err := nbody.Distribute(c, local, box)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			redistributed = mine.N()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	redistSec := time.Since(t0).Seconds()

	t0 = time.Now()
	catOff, centersOff := analyze(merged, box, mass, 0)
	offAnalysis := time.Since(t0).Seconds()
	info, err := os.Stat(l1Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("off-line:  write %.3fs + read %.3fs + redistribute %.3fs + analysis %.3fs  (Level 1 = %.1f MB; rank 0 kept %d)\n",
		writeSec, readSec, redistSec, offAnalysis, float64(info.Size())/1e6, redistributed)
	if len(catOff.Halos) != len(cat.Halos) || len(centersOff) != len(centers) {
		log.Fatalf("off-line results diverge: %d/%d halos, %d/%d centers",
			len(catOff.Halos), len(cat.Halos), len(centersOff), len(centers))
	}

	// --- Workflow 3: combined in-situ/off-line ---
	t0 = time.Now()
	catC, err := halo.FOF(sim.P, box, halo.Options{
		LinkingLength: 0.2 * box / np, MinSize: 10, Periodic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	centersSmall, level2, err := cosmotools.SplitCenterFinding(sim.P, box, catC, splitThreshold,
		center.Options{Mass: mass, Softening: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	inSituPart := time.Since(t0).Seconds()

	l2Path := filepath.Join(dir, "level2.gio")
	t0 = time.Now()
	// One block per large halo, the layout cmd/cosmotools -mode centers
	// consumes.
	var l2blocks []gio.Block
	for bi, span := range level2.Spans {
		idx := make([]int, 0, span.End-span.Start)
		for i := span.Start; i < span.End; i++ {
			idx = append(idx, i)
		}
		l2blocks = append(l2blocks, gio.Block{Rank: bi, Particles: level2.Particles.Select(idx)})
	}
	if err := gio.WriteFile(l2Path, l2blocks); err != nil {
		log.Fatal(err)
	}
	l2WriteSec := time.Since(t0).Seconds()

	t0 = time.Now()
	l2Read, err := gio.ReadFile(l2Path)
	if err != nil {
		log.Fatal(err)
	}
	nCentersOffline := 0
	for _, b := range l2Read {
		if b.Particles.N() == 0 {
			continue
		}
		idx := make([]int, b.Particles.N())
		for i := range idx {
			idx[i] = i
		}
		ux, uy, uz := center.Unwrap(b.Particles.X, b.Particles.Y, b.Particles.Z, idx, box)
		if _, err := center.BruteForce(ux, uy, uz, center.Options{Mass: mass, Softening: 1e-3}); err != nil {
			log.Fatal(err)
		}
		nCentersOffline++
	}
	postSec := time.Since(t0).Seconds()
	l2Info, err := os.Stat(l2Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined:  in-situ %.3fs (%d small centers) + L2 write %.3fs + post %.3fs (%d large centers)  (Level 2 = %.2f MB, %.0f%% of Level 1)\n",
		inSituPart, len(centersSmall), l2WriteSec, postSec, nCentersOffline,
		float64(l2Info.Size())/1e6, 100*float64(l2Info.Size())/float64(info.Size()))

	fmt.Println("\nthe paper's orderings, observed with real compute:")
	offTotal := writeSec + readSec + redistSec + offAnalysis
	combTotal := inSituPart + l2WriteSec + postSec
	fmt.Printf("  off-line total  %.3fs  >  in-situ %.3fs (I/O + redistribution overhead)\n", offTotal, inSitu)
	fmt.Printf("  combined total  %.3fs; Level 2 moved %.0fx less data than Level 1\n",
		combTotal, float64(info.Size())/float64(l2Info.Size()))
}

// analyze runs FOF + centers for every halo at or below threshold (0: all).
func analyze(p *nbody.Particles, boxSize, mass float64, threshold int) (*halo.Catalog, []cosmotools.CenterRecord) {
	cat, err := halo.FOF(p, boxSize, halo.Options{
		LinkingLength: 0.2 * boxSize / np, MinSize: 10, Periodic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	centers, _, err := cosmotools.SplitCenterFinding(p, boxSize, cat, threshold,
		center.Options{Mass: mass, Softening: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	return cat, centers
}
