// In-transit: a live version of the paper's hypothetical third workflow
// variant (§4.2) — Level 2 data staged through a bounded shared-memory
// device instead of the file system, with co-scheduled analysis consumers
// draining it while the simulation keeps running. The paper could not run
// this ("We did not have access to any machines that would have allowed us
// to carry out this test"); here the "separate memory device" is an
// in-process staging area with a byte capacity, so the backpressure
// dynamics (a too-small device throttles the simulation) are observable.
//
//	go run ./examples/intransit
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/center"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/gio"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/transit"
)

func main() {
	log.SetFlags(0)
	params := cosmo.Default()
	const (
		np             = 32
		box            = 40.0
		splitThreshold = 200
		analyzeEvery   = 8
		totalSteps     = 40
	)
	particles, a0, err := ic.Generate(params, ic.Options{NP: np, Box: box, ZInit: 50, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nbody.NewSimulation(params, box, np, particles, a0)
	if err != nil {
		log.Fatal(err)
	}
	mass := params.ParticleMass(box, np)

	// The "separate memory device": deliberately small so staging pressure
	// is visible when large halos appear late in the run.
	stage, err := transit.NewStage(64 * 1024)
	if err != nil {
		log.Fatal(err)
	}
	// Staging metrics: counters only (deliveries run on real goroutines,
	// so per-item spans would not be deterministic — see internal/obs).
	observer := obs.New("intransit", nil)
	stage.SetObs(observer)

	// Co-scheduled analysis consumers: 2 workers drain the stage and
	// compute MBP centers for every staged halo.
	type result struct {
		step    int
		haloTag int64
		count   int
		mbpTag  int64
	}
	var mu sync.Mutex
	var results []result
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		err := transit.Consume(stage, 2, func(item transit.Item) error {
			payload := item.Payload.(stagedHalo)
			p := payload.particles
			idx := make([]int, p.N())
			for i := range idx {
				idx[i] = i
			}
			ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, idx, box)
			res, err := center.BruteForce(ux, uy, uz, center.Options{Mass: mass, Softening: 1e-3})
			if err != nil {
				return err
			}
			mu.Lock()
			results = append(results, result{
				step: payload.step, haloTag: payload.tag,
				count: p.N(), mbpTag: p.Tag[res.Index],
			})
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatalf("consumer: %v", err)
		}
	}()

	// The simulation with in-situ analysis: small halos centered
	// immediately; large halos staged in-transit.
	fofOpts := halo.Options{LinkingLength: 0.2 * box / np, MinSize: 10, Periodic: true}
	start := time.Now()
	inSituCenters := 0
	err = sim.Run(1.0, totalSteps, func(step int) error {
		if step%analyzeEvery != 0 && step != totalSteps {
			return nil
		}
		cat, err := halo.FOF(sim.P, box, fofOpts)
		if err != nil {
			return err
		}
		centers, level2, err := cosmotools.SplitCenterFinding(sim.P, box, cat, splitThreshold,
			center.Options{Mass: mass, Softening: 1e-3})
		if err != nil {
			return err
		}
		inSituCenters += len(centers)
		// Stage each large halo; Put blocks if the device is full — the
		// simulation visibly stalls under analysis pressure.
		for _, span := range level2.Spans {
			idx := make([]int, 0, span.End-span.Start)
			for i := span.Start; i < span.End; i++ {
				idx = append(idx, i)
			}
			sub := level2.Particles.Select(idx)
			if err := stage.Put(transit.Item{
				Key:     fmt.Sprintf("step%02d/halo%d", step, span.Tag),
				Bytes:   gio.BytesForParticles(sub.N()),
				Payload: stagedHalo{step: step, tag: span.Tag, particles: sub},
			}); err != nil {
				return err
			}
		}
		fmt.Printf("step %2d (z=%5.2f): %2d halos; %2d small centered in-situ, %d large staged in-transit\n",
			step, sim.Redshift(), len(cat.Halos), len(centers), len(level2.Spans))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	stage.Close()
	consumerWG.Wait()

	st := stage.Stats()
	fmt.Printf("\nrun finished in %.2fs; in-situ centers: %d\n", time.Since(start).Seconds(), inSituCenters)
	fmt.Printf("staging device: %d items / %.1f KB through, peak %.1f KB of %.1f KB, %d producer stalls\n",
		st.TotalItems, float64(st.TotalBytes)/1024, float64(st.PeakUsed)/1024, 64.0, st.StallCount)
	fmt.Println("\nin-transit centers (computed while the simulation ran):")
	mu.Lock()
	for _, r := range results {
		fmt.Printf("  step %2d halo %6d (%4d particles): MBP tag %d\n", r.step, r.haloTag, r.count, r.mbpTag)
	}
	mu.Unlock()
	fmt.Println("\nstaging metrics:")
	if err := observer.Metrics().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// stagedHalo is the in-memory Level 2 payload handed through the device.
type stagedHalo struct {
	step      int
	tag       int64
	particles *nbody.Particles
}
