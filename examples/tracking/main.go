// Tracking: follow halos across simulation snapshots — the time-evolution
// analysis the paper's introduction motivates ("analysis tasks are carried
// out to not only capture these structures within one time snapshot but
// also to track their evolution ... Over time, halos merge and accrete
// mass", §3). The example evolves a box, catalogs halos at several
// redshifts, links them by shared particle tags, and prints the largest
// halo's growth history and any mergers.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"repro/internal/cosmo"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/nbody"
	"repro/internal/tracking"
)

func main() {
	log.SetFlags(0)
	params := cosmo.Default()
	const (
		np    = 32
		box   = 40.0
		steps = 10 // steps between snapshots
	)
	particles, a0, err := ic.Generate(params, ic.Options{NP: np, Box: box, ZInit: 50, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := nbody.NewSimulation(params, box, np, particles, a0)
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot the box at a sequence of scale factors.
	targets := []float64{0.35, 0.5, 0.65, 0.8, 1.0}
	type snap struct {
		z   float64
		p   *nbody.Particles
		cat *halo.Catalog
	}
	var snaps []snap
	fofOpts := halo.Options{LinkingLength: 0.2 * box / np, MinSize: 10, Periodic: true}
	for _, aT := range targets {
		if err := sim.Run(aT, steps, nil); err != nil {
			log.Fatal(err)
		}
		frozen := sim.P.Clone()
		cat, err := halo.FOF(frozen, box, fofOpts)
		if err != nil {
			log.Fatal(err)
		}
		snaps = append(snaps, snap{z: sim.Redshift(), p: frozen, cat: cat})
		fmt.Printf("z=%5.2f: %3d halos, largest %4d particles\n",
			sim.Redshift(), len(cat.Halos), cat.LargestCount())
	}

	// Link each consecutive snapshot pair.
	var matches []*tracking.Matches
	fmt.Println("\nlinks between snapshots:")
	for i := 0; i+1 < len(snaps); i++ {
		m, err := tracking.Match(snaps[i].p, snaps[i].cat, snaps[i+1].p, snaps[i+1].cat,
			tracking.Options{MinShared: 5})
		if err != nil {
			log.Fatal(err)
		}
		matches = append(matches, m)
		fmt.Printf("  z=%.2f -> z=%.2f: %d links, %d mergers, %d orphans\n",
			snaps[i].z, snaps[i+1].z, len(m.Links), len(m.Mergers), len(m.Orphans))
		for tag, n := range m.Mergers {
			fmt.Printf("    merger: %d progenitors -> halo %d\n", n, tag)
		}
	}

	// Mass history of the final largest halo along its main-progenitor line.
	final := snaps[len(snaps)-1]
	if len(final.cat.Halos) == 0 {
		log.Fatal("no halos at z=0")
	}
	target := final.cat.Halos[0]
	history, err := tracking.Track(target.Tag, matches)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmain-progenitor history of the final largest halo (tag %d, %d particles):\n",
		target.Tag, target.Count())
	// history.Tags is earliest-first and may be shorter than the snapshot
	// list when the halo formed late.
	offset := len(snaps) - len(history.Tags)
	for i, tag := range history.Tags {
		s := snaps[offset+i]
		count := 0
		for hi := range s.cat.Halos {
			if s.cat.Halos[hi].Tag == tag {
				count = s.cat.Halos[hi].Count()
				break
			}
		}
		fmt.Printf("  z=%5.2f: tag %6d, %4d particles\n", s.z, tag, count)
	}
}
