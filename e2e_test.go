package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the command-line tools once into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"hacc-sim", "cosmotools", "workflow-sim", "listener", "catalog-merge"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

// The full tool pipeline: simulate with in-situ analysis, emit Level 2,
// analyze it off-line with the stand-alone driver, check the merged
// products exist and parse.
func TestEndToEndSimulateThenOfflineAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	bins := buildCmds(t)
	outDir := t.TempDir()

	// 1. Simulate with the combined split active so a Level 2 file lands.
	ctCfg := filepath.Join(outDir, "ct.ini")
	if err := os.WriteFile(ctCfg, []byte(`
[powerspectrum]
every = 0
steps = 40
grid = 32
bins = 8

[halofinder]
steps = 40
linking_length = 0.25
min_size = 10
split_threshold = 200
`), 0o644); err != nil {
		t.Fatal(err)
	}
	sim := exec.Command(filepath.Join(bins, "hacc-sim"),
		"-np", "32", "-steps", "40", "-box", "40", "-seed", "3",
		"-out", outDir, "-cosmotools", ctCfg)
	if out, err := sim.CombinedOutput(); err != nil {
		t.Fatalf("hacc-sim: %v\n%s", err, out)
	}
	l2Path := filepath.Join(outDir, "step040.l2.gio")
	if _, err := os.Stat(l2Path); err != nil {
		t.Fatalf("no Level 2 output: %v", err)
	}
	centersPath := filepath.Join(outDir, "step040.centers")
	inSitu, err := os.ReadFile(centersPath)
	if err != nil {
		t.Fatalf("no in-situ centers: %v", err)
	}
	if lines := strings.Count(string(inSitu), "\n"); lines < 5 {
		t.Fatalf("only %d in-situ center lines", lines)
	}

	// 2. Off-line centers for the Level 2 halos via the stand-alone driver.
	offPath := filepath.Join(outDir, "offline.centers")
	ct := exec.Command(filepath.Join(bins, "cosmotools"),
		"-in", l2Path, "-box", "40", "-np", "32", "-mode", "centers", "-out", offPath)
	if out, err := ct.CombinedOutput(); err != nil {
		t.Fatalf("cosmotools: %v\n%s", err, out)
	}
	off, err := os.ReadFile(offPath)
	if err != nil {
		t.Fatal(err)
	}
	offLines := 0
	for _, line := range strings.Split(string(off), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			offLines++
			fields := strings.Fields(line)
			if len(fields) != 7 {
				t.Fatalf("malformed center line %q", line)
			}
		}
	}
	if offLines < 1 {
		t.Fatal("no off-line centers produced")
	}

	// 3. The in-situ file must not contain the large halos (those went to
	// Level 2), and the off-line file must contain only large ones.
	countLines := func(data []byte) int {
		n := 0
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" && !strings.HasPrefix(line, "#") {
				n++
			}
		}
		return n
	}
	for _, line := range strings.Split(string(inSitu), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 7 && fields[6] > "200" && len(fields[6]) > 3 {
			t.Errorf("in-situ centers contain large halo: %q", line)
		}
	}

	// 4. The paper's final step: merge the two catalogs into the complete
	// Level 3 product.
	mergedPath := filepath.Join(outDir, "complete.centers")
	merge := exec.Command(filepath.Join(bins, "catalog-merge"),
		"-out", mergedPath, centersPath, offPath)
	if out, err := merge.CombinedOutput(); err != nil {
		t.Fatalf("catalog-merge: %v\n%s", err, out)
	}
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := countLines(merged), countLines(inSitu)+offLines; got != want {
		t.Errorf("merged catalog has %d halos, want %d (in-situ + off-line)", got, want)
	}
}

// The listener must notice a new Level 2 file and run the analysis command
// on it.
func TestEndToEndListenerCoScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	bins := buildCmds(t)
	outDir := t.TempDir()

	// Pre-stage a Level 2 file by running a short simulation first.
	sim := exec.Command(filepath.Join(bins, "hacc-sim"),
		"-np", "16", "-steps", "30", "-box", "24", "-seed", "11", "-out", outDir)
	if out, err := sim.CombinedOutput(); err != nil {
		t.Fatalf("hacc-sim: %v\n%s", err, out)
	}
	// The default halo finder has no split, so synthesize a Level 2 file by
	// re-running with a split config.
	ctCfg := filepath.Join(outDir, "ct.ini")
	if err := os.WriteFile(ctCfg, []byte("[halofinder]\nsteps = 30\nlinking_length = 0.3\nmin_size = 10\nsplit_threshold = 50\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sim2 := exec.Command(filepath.Join(bins, "hacc-sim"),
		"-np", "16", "-steps", "30", "-box", "24", "-seed", "11", "-out", outDir, "-cosmotools", ctCfg)
	if out, err := sim2.CombinedOutput(); err != nil {
		t.Fatalf("hacc-sim (split): %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "step030.l2.gio")); err != nil {
		t.Skip("no halo above the split threshold in this tiny run; skipping listener check")
	}

	// Listener: analyze each .l2.gio with cosmotools, exit when idle.
	listener := exec.Command(filepath.Join(bins, "listener"),
		"-watch", outDir, "-pattern", ".l2.gio",
		"-poll", "100ms", "-until-idle", "2s",
		"-cmd", filepath.Join(bins, "cosmotools")+" -mode centers -box 24 -np 16 -in {file} -out {file}.centers")
	out, err := listener.CombinedOutput()
	if err != nil {
		t.Fatalf("listener: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "submitting analysis job") {
		t.Fatalf("listener never submitted a job:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "step030.l2.gio.centers")); err != nil {
		t.Fatalf("listener job produced no centers: %v\n%s", err, out)
	}
}

// workflow-sim must run every experiment without error.
func TestEndToEndWorkflowSim(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	bins := buildCmds(t)
	out, err := exec.Command(filepath.Join(bins, "workflow-sim"), "-all").CombinedOutput()
	if err != nil {
		t.Fatalf("workflow-sim -all: %v\n%s", err, out)
	}
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 3", "Figure 4",
		"Q Continuum", "Subhalo imbalance", "Automated split rule", "Co-scheduling",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// Every example must run to completion — they are the library's living
// documentation.
func TestEndToEndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	for _, name := range []string{"quickstart", "halopipeline", "workflows", "insitu", "tracking", "intransit"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", name, err, out)
			}
			if len(out) < 100 {
				t.Errorf("%s produced almost no output:\n%s", name, out)
			}
		})
	}
}

// The input-deck path: §3's "simulation 'input deck' ... includes a
// trigger for CosmoTools and a pointer to the CosmoTools configuration
// file".
func TestEndToEndInputDeck(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	bins := buildCmds(t)
	outDir := t.TempDir()
	ctCfg := filepath.Join(outDir, "ct.ini")
	if err := os.WriteFile(ctCfg, []byte("[halofinder]\nsteps = 25\nlinking_length = 0.3\nmin_size = 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deck := filepath.Join(outDir, "input.deck")
	deckText := `
[simulation]
np = 16
ng = 16
box = 24
z_init = 50
z_final = 0
steps = 25
seed = 4
output_dir = ` + outDir + `

[cosmotools]
enabled = true
config = ` + ctCfg + `
`
	if err := os.WriteFile(deck, []byte(deckText), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(filepath.Join(bins, "hacc-sim"), "-deck", deck).CombinedOutput()
	if err != nil {
		t.Fatalf("hacc-sim -deck: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "16^3") {
		t.Errorf("deck np not honoured:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "step025.centers")); err != nil {
		t.Errorf("deck-driven run produced no centers: %v", err)
	}
	// cosmotools disabled via the deck.
	outDir2 := t.TempDir()
	deck2 := filepath.Join(outDir2, "off.deck")
	if err := os.WriteFile(deck2, []byte("[simulation]\nnp = 16\nsteps = 5\nbox = 24\noutput_dir = "+outDir2+"\n\n[cosmotools]\nenabled = false\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(filepath.Join(bins, "hacc-sim"), "-deck", deck2).CombinedOutput(); err != nil {
		t.Fatalf("disabled deck: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(outDir2, "step005.centers")); err == nil {
		t.Error("cosmotools disabled but centers were written")
	}
}
