// Benchmarks regenerating every table and figure of the paper (via the
// calibrated platform model) and measuring the real analysis kernels that
// anchor it, plus ablations of the design choices called out in DESIGN.md
// §6. Key reproduced values are attached as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the paper-comparable numbers alongside the timing. The rendered
// tables themselves come from cmd/workflow-sim.
package repro

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"bytes"

	"repro/internal/center"
	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/cosmotools"
	"repro/internal/des"
	"repro/internal/dparallel"
	"repro/internal/fs"
	"repro/internal/gio"
	"repro/internal/halo"
	"repro/internal/ic"
	"repro/internal/kdtree"
	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/powerspec"
	"repro/internal/sched"
	"repro/internal/so"
	"repro/internal/subhalo"
	"repro/internal/supervise"
	"repro/internal/tracking"
	"repro/internal/transit"
)

// --- shared fixtures -------------------------------------------------------

var (
	snapOnce sync.Once
	snapSim  *nbody.Simulation
	snapCat  *halo.Catalog
	snapMass float64
	snapErr  error
)

const (
	snapNP  = 32
	snapBox = 40.0
)

// snapshot lazily evolves a 32³ box to z=0 and finds its halos; all
// real-kernel benchmarks share it.
func snapshot(b *testing.B) (*nbody.Simulation, *halo.Catalog, float64) {
	snapOnce.Do(func() {
		params := cosmo.Default()
		particles, a0, err := ic.Generate(params, ic.Options{NP: snapNP, Box: snapBox, ZInit: 50, Seed: 7})
		if err != nil {
			snapErr = err
			return
		}
		snapSim, snapErr = nbody.NewSimulation(params, snapBox, snapNP, particles, a0)
		if snapErr != nil {
			return
		}
		if snapErr = snapSim.Run(1.0, 40, nil); snapErr != nil {
			return
		}
		snapCat, snapErr = halo.FOF(snapSim.P, snapBox, halo.Options{
			LinkingLength: 0.2 * snapBox / snapNP, MinSize: 10, Periodic: true,
		})
		snapMass = params.ParticleMass(snapBox, snapNP)
	})
	if snapErr != nil {
		b.Fatal(snapErr)
	}
	return snapSim, snapCat, snapMass
}

// largestHalo returns the unwrapped coordinates and velocities of the
// snapshot's largest halo.
func largestHalo(b *testing.B) (x, y, z, vx, vy, vz []float64) {
	sim, cat, _ := snapshot(b)
	if len(cat.Halos) == 0 {
		b.Fatal("no halos in fixture")
	}
	h := &cat.Halos[0]
	x, y, z = center.Unwrap(sim.P.X, sim.P.Y, sim.P.Z, h.Indices, snapBox)
	vx = make([]float64, h.Count())
	vy = make([]float64, h.Count())
	vz = make([]float64, h.Count())
	for k, i := range h.Indices {
		vx[k], vy[k], vz[k] = sim.P.VX[i], sim.P.VY[i], sim.P.VZ[i]
	}
	return
}

// --- Table and figure benches (platform model) -----------------------------

// BenchmarkTable1DataLevels regenerates Table 1's data-hierarchy sizes.
func BenchmarkTable1DataLevels(b *testing.B) {
	var rows []core.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Level1Bytes/1e9, "L1-1024³-GB")
	b.ReportMetric(rows[1].Level1Bytes/1e12, "L1-8192³-TB")
	b.ReportMetric(rows[1].Level2Bytes/1e12, "L2-8192³-TB")
}

// BenchmarkTable2SliceTimings regenerates Table 2's per-slice node times.
func BenchmarkTable2SliceTimings(b *testing.B) {
	var rows []core.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.FindMax, "z0-find-max-s")
	b.ReportMetric(last.CenterMax, "z0-center-max-s")
	b.ReportMetric(last.CenterMax/last.CenterMin, "z0-center-imbalance")
}

// BenchmarkTable3WorkflowComparison regenerates Table 3's core-hour
// comparison (paper: 193 / 356 / 135).
func BenchmarkTable3WorkflowComparison(b *testing.B) {
	s, err := core.DownscaledScenario(3)
	if err != nil {
		b.Fatal(err)
	}
	var inSitu, offline, combined float64
	for i := 0; i < b.N; i++ {
		for _, k := range []core.Kind{core.InSitu, core.Offline, core.CombinedSimple} {
			r, err := core.Run(s, k)
			if err != nil {
				b.Fatal(err)
			}
			switch k {
			case core.InSitu:
				inSitu = r.AnalysisCoreHours
			case core.Offline:
				offline = r.AnalysisCoreHours
			case core.CombinedSimple:
				combined = r.AnalysisCoreHours
			}
		}
	}
	b.ReportMetric(inSitu, "insitu-corehrs")
	b.ReportMetric(offline, "offline-corehrs")
	b.ReportMetric(combined, "combined-corehrs")
}

// BenchmarkTable4Detailed regenerates Table 4's phase breakdown for all
// five workflow variants.
func BenchmarkTable4Detailed(b *testing.B) {
	s, err := core.DownscaledScenario(3)
	if err != nil {
		b.Fatal(err)
	}
	var combined *core.Report
	for i := 0; i < b.N; i++ {
		for _, k := range core.Kinds() {
			r, err := core.Run(s, k)
			if err != nil {
				b.Fatal(err)
			}
			if k == core.CombinedSimple {
				combined = r
			}
		}
	}
	b.ReportMetric(combined.AnalysisSeconds, "combined-insitu-s")
	b.ReportMetric(combined.PostAnalysisSeconds, "combined-post-s")
	b.ReportMetric(combined.RedistributeSeconds, "combined-redist-s")
}

// BenchmarkFigure3MassFunction regenerates Figure 3's halo mass function.
func BenchmarkFigure3MassFunction(b *testing.B) {
	var total, off float64
	var err error
	for i := 0; i < b.N; i++ {
		_, total, off, err = core.Figure3(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(total, "halos")
	b.ReportMetric(off, "offloaded")
}

// BenchmarkFigure4NodeTimes regenerates Figure 4's per-node projected
// center-time histogram.
func BenchmarkFigure4NodeTimes(b *testing.B) {
	var maxBin float64
	for i := 0; i < b.N; i++ {
		h, err := core.Figure4(1)
		if err != nil {
			b.Fatal(err)
		}
		maxBin = h.Max
	}
	b.ReportMetric(maxBin, "tail-seconds")
}

// BenchmarkQContinuumStudy regenerates the §4.1 case study.
func BenchmarkQContinuumStudy(b *testing.B) {
	var r *core.QContinuumReport
	var err error
	for i := 0; i < b.N; i++ {
		r, err = core.QContinuumStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MoonlightNodeHours, "moonlight-nodehrs")
	b.ReportMetric(r.SavingFactor, "saving-factor")
	b.ReportMetric(r.CombinedCoreHours/1e6, "combined-Mcorehrs")
}

// BenchmarkSubhaloImbalance regenerates the §4.2 subhalo imbalance.
func BenchmarkSubhaloImbalance(b *testing.B) {
	var slow, fast float64
	var err error
	for i := 0; i < b.N; i++ {
		slow, fast, err = core.SubhaloImbalance(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slow, "slowest-s")
	b.ReportMetric(fast, "fastest-s")
	b.ReportMetric(slow/fast, "imbalance")
}

// --- Real kernel benches (anchor measurements) ------------------------------

// BenchmarkPMStep measures one particle-mesh KDK step of the 32³ fixture.
func BenchmarkPMStep(b *testing.B) {
	sim, _, _ := snapshot(b)
	clone := sim.P.Clone()
	params := cosmo.Default()
	s2, err := nbody.NewSimulation(params, snapBox, snapNP, clone, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s2.Step(0.0001); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFOFKernel measures the k-d tree FOF halo finder on the
// clustered fixture.
func BenchmarkFOFKernel(b *testing.B) {
	sim, _, _ := snapshot(b)
	o := halo.Options{LinkingLength: 0.2 * snapBox / snapNP, MinSize: 10, Periodic: true}
	b.ResetTimer()
	var nHalos int
	for i := 0; i < b.N; i++ {
		cat, err := halo.FOF(sim.P, snapBox, o)
		if err != nil {
			b.Fatal(err)
		}
		nHalos = len(cat.Halos)
	}
	b.ReportMetric(float64(nHalos), "halos")
	b.ReportMetric(float64(sim.P.N())/1e3, "kparticles")
}

// BenchmarkPowerSpectrum measures the CIC+FFT power-spectrum kernel.
func BenchmarkPowerSpectrum(b *testing.B) {
	sim, _, _ := snapshot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := powerspec.Measure(sim.P, snapBox, snapNP, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCenterBruteForce measures the data-parallel O(n²) MBP finder on
// the largest fixture halo (the per-pair cost that calibrates
// platform.AnalysisCosts.CenterPairSeconds).
func BenchmarkCenterBruteForce(b *testing.B) {
	x, y, z, _, _, _ := largestHalo(b)
	n := float64(len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := center.BruteForce(x, y, z, center.Options{Softening: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perPair := b.Elapsed().Seconds() / float64(b.N) / (n * n)
	b.ReportMetric(n, "particles")
	b.ReportMetric(perPair*1e9, "ns-per-pair")
}

// BenchmarkCenterAStar measures the serial A* finder on the same halo.
func BenchmarkCenterAStar(b *testing.B) {
	x, y, z, _, _, _ := largestHalo(b)
	var evaluated int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := center.AStar(x, y, z, center.Options{Softening: 1e-3})
		if err != nil {
			b.Fatal(err)
		}
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated), "exact-evals")
	b.ReportMetric(float64(len(x)), "particles")
}

// BenchmarkSubhaloKernel measures the full substructure search on the
// largest fixture halo.
func BenchmarkSubhaloKernel(b *testing.B) {
	x, y, z, vx, vy, vz := largestHalo(b)
	_, _, mass := snapshot(b)
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		res, err := subhalo.Find(x, y, z, vx, vy, vz, subhalo.Options{
			Mass: mass, K: 16, MinSize: 20, Softening: 1e-3,
		})
		if err != nil {
			b.Fatal(err)
		}
		found = len(res.Subhalos)
	}
	b.ReportMetric(float64(found), "subhalos")
}

// BenchmarkSOKernel measures spherical-overdensity mass estimation seeded
// at the largest halo's center of mass.
func BenchmarkSOKernel(b *testing.B) {
	sim, cat, mass := snapshot(b)
	tree, err := kdtree.Build(sim.P.X, sim.P.Y, sim.P.Z, snapBox, 16)
	if err != nil {
		b.Fatal(err)
	}
	c := cat.Halos[0].Center
	rho := cosmo.Default().MeanMatterDensity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := so.Measure(tree, c[0], c[1], c[2], so.Options{
			ParticleMass: mass, Delta: 200, RhoRef: rho, MaxRadius: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) -----------------------------------------------

// BenchmarkAblationFOFNaive compares the O(n²) FOF baseline against the
// k-d tree finder (BenchmarkFOFKernel) on a reduced subset — the naive
// algorithm cannot take the full fixture.
func BenchmarkAblationFOFNaive(b *testing.B) {
	sim, _, _ := snapshot(b)
	idx := make([]int, 4000)
	for i := range idx {
		idx[i] = i * sim.P.N() / len(idx)
	}
	sub := sim.P.Select(idx)
	o := halo.Options{LinkingLength: 0.2 * snapBox / snapNP, MinSize: 5, Periodic: true}
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := halo.FOF(sub, snapBox, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := halo.NaiveFOF(sub, snapBox, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCenterFinders compares the center-finding strategies on
// the largest halo: serial brute force, parallel brute force (the PISTON
// path), and A* (the paper's pre-GPU production algorithm).
func BenchmarkAblationCenterFinders(b *testing.B) {
	x, y, z, _, _, _ := largestHalo(b)
	for _, tc := range []struct {
		name string
		opts center.Options
		fn   func([]float64, []float64, []float64, center.Options) (center.Result, error)
	}{
		{"brute-serial", center.Options{Softening: 1e-3, Backend: dparallel.Serial{}}, center.BruteForce},
		{"brute-parallel", center.Options{Softening: 1e-3, Backend: dparallel.Parallel{}}, center.BruteForce},
		{"astar", center.Options{Softening: 1e-3}, center.AStar},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.fn(x, y, z, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSplitThreshold sweeps the in-situ/off-line split and
// reports combined-workflow core hours per threshold — the design knob the
// paper fixed at 300,000.
func BenchmarkAblationSplitThreshold(b *testing.B) {
	s, err := core.DownscaledScenario(3)
	if err != nil {
		b.Fatal(err)
	}
	for _, threshold := range []int{50000, 100000, 300000, 1000000} {
		b.Run(fmt.Sprintf("threshold-%d", threshold), func(b *testing.B) {
			sc := *s
			sc.SplitThreshold = threshold
			var coreHrs float64
			for i := 0; i < b.N; i++ {
				r, err := core.Run(&sc, core.CombinedSimple)
				if err != nil {
					b.Fatal(err)
				}
				coreHrs = r.AnalysisCoreHours
			}
			b.ReportMetric(coreHrs, "corehrs")
		})
	}
}

// BenchmarkAblationBackends compares the dparallel backends on the
// potential-map workload (the portability claim of the PISTON layer).
func BenchmarkAblationBackends(b *testing.B) {
	x, y, z, _, _, _ := largestHalo(b)
	for _, backend := range []dparallel.Backend{
		dparallel.Serial{},
		dparallel.Parallel{NumWorkers: 2},
		dparallel.Parallel{},
	} {
		b.Run(backend.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := center.BruteForce(x, y, z, center.Options{Softening: 1e-3, Backend: backend}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOverload measures parallel FOF cost as the overload
// width grows: wider ghosts mean more duplicated work (the trade-off
// §3.3.1 sets against halo completeness).
func BenchmarkAblationOverload(b *testing.B) {
	sim, _, _ := snapshot(b)
	o := halo.Options{LinkingLength: 0.2 * snapBox / snapNP, MinSize: 10}
	for _, overload := range []float64{1, 2.5, 5} {
		b.Run(fmt.Sprintf("overload-%.1f", overload), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.RunRanks(4, func(c *mpi.Comm) error {
					var idx []int
					for j := 0; j < sim.P.N(); j++ {
						if nbody.SlabOwner(sim.P.X[j], c.Size(), snapBox) == c.Rank() {
							idx = append(idx, j)
						}
					}
					_, err := halo.ParallelFOF(c, sim.P.Select(idx), snapBox, overload, o)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationListenerPollRate measures co-scheduling latency (file
// landing -> analysis start) versus poll interval on the discrete-event
// scheduler.
func BenchmarkAblationListenerPollRate(b *testing.B) {
	for _, poll := range []float64{1, 30, 300} {
		b.Run(fmt.Sprintf("poll-%.0fs", poll), func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				var sim des.Sim
				storage := fs.New(&sim, "lustre")
				cluster, err := sched.NewCluster(&sim, platform.Titan())
				if err != nil {
					b.Fatal(err)
				}
				var started float64
				l := &sched.Listener{
					Sim: &sim, FS: storage, Cluster: cluster,
					Prefix: "out/", PollInterval: poll,
					MakeJob: func(path string, f *fs.File) *sched.Job {
						return &sched.Job{Name: path, Nodes: 4, Duration: 100,
							OnStart: func(j *sched.Job) { started = j.StartTime }}
					},
				}
				if err := l.Start(); err != nil {
					b.Fatal(err)
				}
				landing := 500.0
				sim.At(landing, func() { storage.Write("out/step.gio", 1e9, 0, nil, nil) })
				sim.At(5000, l.Stop)
				sim.Run()
				latency = started - landing
			}
			b.ReportMetric(latency, "latency-s")
		})
	}
}

// --- Additional kernel benches (extension packages) --------------------------

// BenchmarkProfileAndShape measures the Level 3 property kernels on the
// largest fixture halo.
func BenchmarkProfileAndShape(b *testing.B) {
	sim, cat, _ := snapshot(b)
	hl := &cat.Halos[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cosmotools.MeasureProperties(sim.P, snapBox, hl, 12, 0.05); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hl.Count()), "particles")
}

// BenchmarkTrackingMatch measures snapshot-pair halo matching.
func BenchmarkTrackingMatch(b *testing.B) {
	sim, cat, _ := snapshot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracking.Match(sim.P, cat, sim.P, cat, tracking.Options{MinShared: 5}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cat.Halos)), "halos")
}

// BenchmarkTransitThroughput measures staging-device handoff rate.
func BenchmarkTransitThroughput(b *testing.B) {
	stage, err := transit.NewStage(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- transit.Consume(stage, 2, func(transit.Item) error { return nil })
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stage.Put(transit.Item{Key: "k", Bytes: 1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stage.Close()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCheckpointRoundTrip measures full-precision state save/load.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	sim, _, _ := snapshot(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := gio.WriteCheckpoint(&buf, sim); err != nil {
			b.Fatal(err)
		}
		if _, err := gio.ReadCheckpoint(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkParallelAnalysisRanks measures the distributed in-situ pipeline
// at several rank counts (strong scaling of the rank-goroutine runtime).
func BenchmarkParallelAnalysisRanks(b *testing.B) {
	sim, _, mass := snapshot(b)
	fofOpts := halo.Options{LinkingLength: 0.2 * snapBox / snapNP, MinSize: 10}
	co := center.Options{Mass: mass, Softening: 1e-3}
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.RunRanks(ranks, func(c *mpi.Comm) error {
					var idx []int
					for j := 0; j < sim.P.N(); j++ {
						if nbody.SlabOwner(sim.P.X[j], c.Size(), snapBox) == c.Rank() {
							idx = append(idx, j)
						}
					}
					_, err := cosmotools.ParallelAnalysis(c, sim.P.Select(idx), snapBox, 2.5, fofOpts, 300, co)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDispatch quantifies the paper's §3.1 remark that the
// virtual-function (here: interface) dispatch overhead of the in-situ
// framework is negligible against any real analysis body.
func BenchmarkAblationDispatch(b *testing.B) {
	sim, _, _ := snapshot(b)
	ctx := cosmotools.NewContext(1, 1, snapBox, 1, sim.P)
	var m cosmotools.Manager
	noop := &noopAlgorithm{}
	if err := m.Register(noop); err != nil {
		b.Fatal(err)
	}
	b.Run("manager-dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := noop.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type noopAlgorithm struct{}

func (n *noopAlgorithm) Name() string                           { return "noop" }
func (n *noopAlgorithm) SetParameters(map[string]string) error  { return nil }
func (n *noopAlgorithm) ShouldExecute(*cosmotools.Context) bool { return true }
func (n *noopAlgorithm) Execute(ctx *cosmotools.Context) error  { return nil }

// BenchmarkAblationSubtreeMerge quantifies the §3.3.1 bounding-box
// shortcut: FOF with whole-subtree merging versus per-pair distance tests
// only.
func BenchmarkAblationSubtreeMerge(b *testing.B) {
	sim, _, _ := snapshot(b)
	base := halo.Options{LinkingLength: 0.2 * snapBox / snapNP, MinSize: 10, Periodic: true}
	b.Run("subtree-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := halo.FOF(sim.P, snapBox, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairwise-only", func(b *testing.B) {
		o := base
		o.DisableSubtreeMerge = true
		for i := 0; i < b.N; i++ {
			if _, err := halo.FOF(sim.P, snapBox, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSort compares the serial and chunked-merge sorts on the
// subhalo finder's density-ordering workload shape.
func BenchmarkParallelSort(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	n := 100000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perm := make([]int, n)
			dparallel.Iota(perm)
			dparallel.SortByKey(perm, keys)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perm := make([]int, n)
			dparallel.Iota(perm)
			dparallel.ParallelSortByKey(dparallel.Parallel{}, perm, keys)
		}
	})
}

// BenchmarkSupervisedCampaign measures the overhead of gray-failure
// supervision on a fault-free campaign. The heartbeat is a pure function
// polled once per miss window by a single watchdog event (not one event
// per beat), so the supervised run should stay within a few percent of
// the unsupervised baseline (EXPERIMENTS.md tracks the measured ratio,
// target < 3%).
func BenchmarkSupervisedCampaign(b *testing.B) {
	const steps = 20
	scenario := func(b *testing.B) *core.Scenario {
		s, err := core.DownscaledScenario(3)
		if err != nil {
			b.Fatal(err)
		}
		s.PostQueueWait = 0
		return s
	}
	b.Run("baseline", func(b *testing.B) {
		s := scenario(b)
		for i := 0; i < b.N; i++ {
			if _, err := core.Campaign(s, steps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("supervised", func(b *testing.B) {
		s := scenario(b)
		pol := supervise.DefaultPolicy()
		s.Supervise = &pol
		var rep *core.CampaignReport
		for i := 0; i < b.N; i++ {
			var err error
			if rep, err = core.Campaign(s, steps); err != nil {
				b.Fatal(err)
			}
		}
		// Fault-free: supervision must watch every job and recover nothing.
		if rep.Resilience.HedgesLaunched != 0 || rep.AnalysisJobs != steps {
			b.Fatalf("fault-free supervised campaign misbehaved: %+v", rep.Resilience)
		}
	})
}

// BenchmarkScrubbedCampaign measures the fault-free overhead of the data
// integrity layer on a persisted campaign: lineage ledger commits plus
// co-scheduled background scrub jobs re-verifying every product. The
// scrubbed run should stay within a few percent of the bare persisted
// baseline (EXPERIMENTS.md tracks the measured ratio, target < 5%).
func BenchmarkScrubbedCampaign(b *testing.B) {
	const steps = 20
	scenario := func(b *testing.B) *core.Scenario {
		s, err := core.DownscaledScenario(3)
		if err != nil {
			b.Fatal(err)
		}
		s.PostQueueWait = 0
		return s
	}
	run := func(b *testing.B, s *core.Scenario) *core.CampaignReport {
		b.Helper()
		dir, err := os.MkdirTemp("", "scrubbench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		rep, err := core.ResumableCampaign(s, steps, dir, 3)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	b.Run("baseline", func(b *testing.B) {
		s := scenario(b)
		for i := 0; i < b.N; i++ {
			run(b, s)
		}
	})
	b.Run("scrubbed", func(b *testing.B) {
		s := scenario(b)
		s.Scrub = &core.ScrubPolicy{}
		var rep *core.CampaignReport
		for i := 0; i < b.N; i++ {
			rep = run(b, s)
		}
		// Fault-free: every scrub verification must pass and repair nothing.
		if rep.Integrity.Corruptions != 0 || rep.Integrity.Verified == 0 {
			b.Fatalf("fault-free scrubbed campaign misbehaved: %+v", rep.Integrity)
		}
	})
}

// BenchmarkObservedCampaign measures the overhead of the deterministic
// observability layer on a fault-free campaign. "noop" is the nil-Observer
// path (every instrumentation site short-circuits before allocating);
// "observed" records live campaign/step/job spans plus the full
// sched/listener metrics registry. The no-op path must be free and the
// instrumented run should stay within a few percent of it (EXPERIMENTS.md
// tracks the measured ratios, target < 2%).
func BenchmarkObservedCampaign(b *testing.B) {
	const steps = 20
	scenario := func(b *testing.B) *core.Scenario {
		s, err := core.DownscaledScenario(3)
		if err != nil {
			b.Fatal(err)
		}
		s.PostQueueWait = 0
		return s
	}
	b.Run("noop", func(b *testing.B) {
		s := scenario(b)
		for i := 0; i < b.N; i++ {
			if _, err := core.Campaign(s, steps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		s := scenario(b)
		var o *obs.Observer
		for i := 0; i < b.N; i++ {
			// Fresh observer per run: spans accumulate per campaign, and a
			// real caller traces one campaign per observer.
			o = obs.New("campaign", nil)
			s.Obs = o
			if _, err := core.Campaign(s, steps); err != nil {
				b.Fatal(err)
			}
		}
		// Fault-free: the full hierarchy must have been traced.
		if spans := o.Spans(); len(spans) < 2*steps+1 {
			b.Fatalf("observed campaign recorded %d spans, want >= %d", len(spans), 2*steps+1)
		}
	})
}
